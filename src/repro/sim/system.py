"""Assembly of the full simulated system from configuration objects."""

from __future__ import annotations

from repro.common.types import MemResponse
from repro.config.policies import PolicyConfig
from repro.config.system import SystemConfig
from repro.cores.core import VectorCore
from repro.cores.l1 import L1Cache
from repro.cores.scheduler import ThreadBlockScheduler
from repro.dram.system import DramSystem
from repro.llc.llc import SlicedLLC
from repro.noc.interconnect import Interconnect
from repro.throttle.factory import make_throttle_controller
from repro.trace.threadblock import Trace


class SimulatedSystem:
    """All hardware components of one simulation, wired together.

    The wiring follows Fig 3/4: cores issue through their private L1 into the
    interconnect; the interconnect feeds the per-slice request queues; slices
    talk to DRAM; DRAM fills free MSHR entries and fan out responses straight
    back to the requesting cores through the interconnect.
    """

    def __init__(
        self,
        system: SystemConfig,
        policy: PolicyConfig,
        trace: Trace,
    ) -> None:
        system.validate()
        policy.validate()
        self.config = system
        self.policy = policy
        self.trace = trace
        self.cycle = 0

        self.dram = DramSystem(
            system.dram, system.frequency_ghz, line_size=system.l2.line_size
        )
        self.llc = SlicedLLC(
            config=system.l2,
            policy=policy,
            num_cores=system.core.num_cores,
            response_sink=self._response_sink,
            dram_sink=self._dram_sink,
        )
        self.noc = Interconnect(
            config=system.noc,
            address_map=self.llc.address_map,
            num_cores=system.core.num_cores,
            num_slices=system.l2.num_slices,
        )
        self.scheduler = ThreadBlockScheduler(trace)
        self.cores = [
            VectorCore(
                core_id=i,
                config=system.core,
                l1=L1Cache(system.l1, core_id=i),
                request_sink=self.noc.send_request,
                scheduler=self.scheduler,
            )
            for i in range(system.core.num_cores)
        ]
        self.throttle = make_throttle_controller(policy)
        self.throttle.attach(self.cores, self.llc)

        self._slice_sinks = self.llc.slice_sinks()
        self._core_sinks = [core.receive for core in self.cores]

    # -- component glue ------------------------------------------------------------------
    def _response_sink(self, resp: MemResponse, cycle: int, extra_delay: int) -> None:
        self.noc.send_response(resp, cycle, extra_delay)

    def _dram_sink(self, line_addr: int, is_write: bool, slice_id: int) -> bool:
        return self.dram.enqueue(line_addr, is_write, payload=slice_id, cycle=self.cycle)

    # -- per-cycle advance ---------------------------------------------------------------------
    def step(self, cycle: int) -> None:
        """Advance every component by one cycle."""

        self.cycle = cycle

        # DRAM completions free MSHR entries and fan responses out to the cores.
        for payload, line_addr, is_write in self.dram.tick(cycle):
            if not is_write:
                self.llc.on_dram_fill(payload, line_addr, cycle)

        self.llc.tick(cycle)
        self.noc.tick(cycle, self._slice_sinks, self._core_sinks)
        for core in self.cores:
            core.tick(cycle)
        self.throttle.tick(cycle)

    # -- completion -----------------------------------------------------------------------------
    def finished(self) -> bool:
        """True when every thread block completed and all traffic drained."""

        if not self.scheduler.all_complete:
            return False
        if any(core.outstanding_requests for core in self.cores):
            return False
        if self.noc.has_work():
            return False
        if self.llc.outstanding_work():
            return False
        if self.dram.has_work():
            return False
        return True
