"""Figure 7: speedups of the Logit operator in the miss-handling-bound regime.

Panels (a)&(d): throttling policies (dyncta, lcs, dynmg) normalised against the
unoptimized run.  Panels (b)&(e): arbitration policies (cobrra, B, MA, BMA),
each combined with dynmg and normalised against dynmg alone.  Panels (c)&(f):
cumulative speedups of dynmg / dynmg+B / dynmg+MA / dynmg+BMA against the
unoptimized run.  Both Llama3-70B and Llama3-405B are evaluated at sequence
lengths 4K, 8K and 16K (scaled down by the selected tier).

Every grid cell is named through :class:`repro.api.Scenario`: the panel
definitions below are plain ``{display name: policy label}`` mappings resolved
through the policy registry (explicit :class:`PolicyConfig` values are also
accepted for ad-hoc panels).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import Scenario
from repro.common.mathutils import geomean
from repro.config.policies import PolicyConfig
from repro.config.presets import FIG7_SEQ_LENS
from repro.config.scale import ScaleTier
from repro.experiments.reporting import format_series
from repro.sim.results import SimResult
from repro.sweep.executor import run_sweep
from repro.sweep.spec import SweepPoint
from repro.sweep.store import ResultStore

#: Throttling policies of panels (a)&(d) (display name -> policy label).
THROTTLE_POLICIES = {
    "dyncta": "dyncta",
    "lcs": "lcs",
    "dynmg": "dynmg",
}

#: Arbitration policies of panels (b)&(e); each rides on top of dynmg.
ARBITRATION_POLICIES = {
    "cobrra": "dynmg+cobrra",
    "B": "dynmg+B",
    "MA": "dynmg+MA",
    "BMA": "dynmg+BMA",
}

#: Cumulative policies of panels (c)&(f).
CUMULATIVE_POLICIES = {
    "dynmg": "dynmg",
    "dynmg+B": "dynmg+B",
    "dynmg+MA": "dynmg+MA",
    "dynmg+BMA": "dynmg+BMA",
}


@dataclass(slots=True)
class Fig7Result:
    """Speedup series for one panel: model -> seq_len -> policy -> speedup."""

    panel: str
    tier: ScaleTier
    seq_lens: tuple[int, ...]
    #: speedups[model][policy] is a list aligned with ``seq_lens``.
    speedups: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    raw: dict[tuple[str, int, str], SimResult] = field(default_factory=dict)

    def geomean(self, model: str, policy: str) -> float:
        return geomean(self.speedups[model][policy])

    def render(self) -> str:
        blocks = []
        for model, series in self.speedups.items():
            blocks.append(
                format_series(
                    f"Fig 7 ({self.panel}) -- {model} (tier={self.tier.name})",
                    "seq len",
                    [f"{s//1024}K" if s >= 1024 else str(s) for s in self.seq_lens],
                    series,
                )
            )
        return "\n\n".join(blocks)


def _panel_point(
    model: str,
    seq_len: int,
    policy: str | PolicyConfig,
    label: str,
    tier: ScaleTier,
    max_cycles: int | None,
) -> SweepPoint:
    scenario = Scenario.create(
        model, policy, seq_len=seq_len, tier=tier, max_cycles=max_cycles
    )
    return scenario.to_point(label=label, extra_coords=(("policy", label),))


def _run_panel(
    panel: str,
    policies: dict[str, str | PolicyConfig],
    baseline: str | PolicyConfig,
    tier: ScaleTier,
    models: tuple[str, ...],
    seq_lens: tuple[int, ...],
    max_cycles: int | None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> Fig7Result:
    result = Fig7Result(panel=panel, tier=tier, seq_lens=tuple(seq_lens))

    # Expand the whole panel grid into sweep points, then submit it in one go;
    # parallel when jobs > 1 and resumable when a store is attached.
    cells: list[tuple[str, int, dict[str, SweepPoint]]] = []
    points: list[SweepPoint] = []
    for model in models:
        result.speedups[model] = {name: [] for name in policies}
        for seq_len in seq_lens:
            cell = {
                "baseline": _panel_point(
                    model, seq_len, baseline, "baseline", tier, max_cycles
                )
            }
            for name, policy in policies.items():
                cell[name] = _panel_point(model, seq_len, policy, name, tier, max_cycles)
            cells.append((model, seq_len, cell))
            points.extend(cell.values())

    report = run_sweep(points, jobs=jobs, store=store).raise_on_failure()
    for model, seq_len, cell in cells:
        base_run = report.result_for(cell["baseline"])
        result.raw[(model, seq_len, "baseline")] = base_run
        for name in policies:
            run = report.result_for(cell[name])
            result.raw[(model, seq_len, name)] = run
            result.speedups[model][name].append(base_run.cycles / run.cycles)
    return result


def run_fig7_throttling(
    tier: ScaleTier = ScaleTier.CI,
    models: tuple[str, ...] = ("llama3-70b", "llama3-405b"),
    seq_lens: tuple[int, ...] = FIG7_SEQ_LENS,
    max_cycles: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> Fig7Result:
    """Panels (a)&(d): throttling speedups over the unoptimized configuration."""

    return _run_panel(
        "a,d: throttling", THROTTLE_POLICIES, "unopt", tier, models, seq_lens,
        max_cycles, jobs=jobs, store=store,
    )


def run_fig7_arbitration(
    tier: ScaleTier = ScaleTier.CI,
    models: tuple[str, ...] = ("llama3-70b", "llama3-405b"),
    seq_lens: tuple[int, ...] = FIG7_SEQ_LENS,
    max_cycles: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> Fig7Result:
    """Panels (b)&(e): arbitration speedups, each policy + dynmg over dynmg alone."""

    return _run_panel(
        "b,e: arbitration (+dynmg, vs dynmg)",
        ARBITRATION_POLICIES,
        "dynmg",
        tier,
        models,
        seq_lens,
        max_cycles,
        jobs=jobs,
        store=store,
    )


def run_fig7_cumulative(
    tier: ScaleTier = ScaleTier.CI,
    models: tuple[str, ...] = ("llama3-70b", "llama3-405b"),
    seq_lens: tuple[int, ...] = FIG7_SEQ_LENS,
    max_cycles: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> Fig7Result:
    """Panels (c)&(f): cumulative speedups over the unoptimized configuration."""

    return _run_panel(
        "c,f: cumulative", CUMULATIVE_POLICIES, "unopt", tier, models, seq_lens,
        max_cycles, jobs=jobs, store=store,
    )
