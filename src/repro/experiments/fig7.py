"""Figure 7: speedups of the Logit operator in the miss-handling-bound regime.

Panels (a)&(d): throttling policies (dyncta, lcs, dynmg) normalised against the
unoptimized run.  Panels (b)&(e): arbitration policies (cobrra, B, MA, BMA),
each combined with dynmg and normalised against dynmg alone.  Panels (c)&(f):
cumulative speedups of dynmg / dynmg+B / dynmg+MA / dynmg+BMA against the
unoptimized run.  Both Llama3-70B and Llama3-405B are evaluated at sequence
lengths 4K, 8K and 16K (scaled down by the selected tier).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.mathutils import geomean
from repro.config.policies import ArbitrationKind, PolicyConfig, ThrottleKind
from repro.config.presets import (
    FIG7_SEQ_LENS,
    llama3_405b_logit,
    llama3_70b_logit,
    table5_system,
)
from repro.config.scale import ScaleTier, scale_experiment
from repro.config.workload import WorkloadConfig
from repro.experiments.reporting import format_series
from repro.sim.results import SimResult
from repro.sim.runner import run_policy

#: Throttling policies of panels (a)&(d) (paper legend names).
THROTTLE_POLICIES = {
    "dyncta": PolicyConfig(throttle=ThrottleKind.DYNCTA),
    "lcs": PolicyConfig(throttle=ThrottleKind.LCS),
    "dynmg": PolicyConfig(throttle=ThrottleKind.DYNMG),
}

#: Arbitration policies of panels (b)&(e); each rides on top of dynmg.
ARBITRATION_POLICIES = {
    "cobrra": PolicyConfig(throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.COBRRA),
    "B": PolicyConfig(throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.BALANCED),
    "MA": PolicyConfig(throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.MSHR_AWARE),
    "BMA": PolicyConfig(
        throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.BALANCED_MSHR_AWARE
    ),
}

#: Cumulative policies of panels (c)&(f).
CUMULATIVE_POLICIES = {
    "dynmg": PolicyConfig(throttle=ThrottleKind.DYNMG),
    "dynmg+B": PolicyConfig(throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.BALANCED),
    "dynmg+MA": PolicyConfig(
        throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.MSHR_AWARE
    ),
    "dynmg+BMA": PolicyConfig(
        throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.BALANCED_MSHR_AWARE
    ),
}


def paper_workload(model: str, seq_len: int) -> WorkloadConfig:
    if model == "llama3-70b":
        return llama3_70b_logit(seq_len)
    if model == "llama3-405b":
        return llama3_405b_logit(seq_len)
    raise ValueError(f"unknown model {model!r}")


@dataclass(slots=True)
class Fig7Result:
    """Speedup series for one panel: model -> seq_len -> policy -> speedup."""

    panel: str
    tier: ScaleTier
    seq_lens: tuple[int, ...]
    #: speedups[model][policy] is a list aligned with ``seq_lens``.
    speedups: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    raw: dict[tuple[str, int, str], SimResult] = field(default_factory=dict)

    def geomean(self, model: str, policy: str) -> float:
        return geomean(self.speedups[model][policy])

    def render(self) -> str:
        blocks = []
        for model, series in self.speedups.items():
            blocks.append(
                format_series(
                    f"Fig 7 ({self.panel}) -- {model} (tier={self.tier.name})",
                    "seq len",
                    [f"{s//1024}K" if s >= 1024 else str(s) for s in self.seq_lens],
                    series,
                )
            )
        return "\n\n".join(blocks)


def _run_panel(
    panel: str,
    policies: dict[str, PolicyConfig],
    baseline: PolicyConfig,
    tier: ScaleTier,
    models: tuple[str, ...],
    seq_lens: tuple[int, ...],
    max_cycles: int | None,
) -> Fig7Result:
    result = Fig7Result(panel=panel, tier=tier, seq_lens=tuple(seq_lens))
    base_system = table5_system()
    for model in models:
        result.speedups[model] = {name: [] for name in policies}
        for seq_len in seq_lens:
            system, workload = scale_experiment(base_system, paper_workload(model, seq_len), tier)
            base_run = run_policy(system, workload, baseline, label="baseline",
                                  max_cycles=max_cycles)
            result.raw[(model, seq_len, "baseline")] = base_run
            for name, policy in policies.items():
                run = run_policy(system, workload, policy, label=name, max_cycles=max_cycles)
                result.raw[(model, seq_len, name)] = run
                result.speedups[model][name].append(base_run.cycles / run.cycles)
    return result


def run_fig7_throttling(
    tier: ScaleTier = ScaleTier.CI,
    models: tuple[str, ...] = ("llama3-70b", "llama3-405b"),
    seq_lens: tuple[int, ...] = FIG7_SEQ_LENS,
    max_cycles: int | None = None,
) -> Fig7Result:
    """Panels (a)&(d): throttling speedups over the unoptimized configuration."""

    return _run_panel(
        "a,d: throttling", THROTTLE_POLICIES, PolicyConfig(), tier, models, seq_lens, max_cycles
    )


def run_fig7_arbitration(
    tier: ScaleTier = ScaleTier.CI,
    models: tuple[str, ...] = ("llama3-70b", "llama3-405b"),
    seq_lens: tuple[int, ...] = FIG7_SEQ_LENS,
    max_cycles: int | None = None,
) -> Fig7Result:
    """Panels (b)&(e): arbitration speedups, each policy + dynmg over dynmg alone."""

    return _run_panel(
        "b,e: arbitration (+dynmg, vs dynmg)",
        ARBITRATION_POLICIES,
        PolicyConfig(throttle=ThrottleKind.DYNMG),
        tier,
        models,
        seq_lens,
        max_cycles,
    )


def run_fig7_cumulative(
    tier: ScaleTier = ScaleTier.CI,
    models: tuple[str, ...] = ("llama3-70b", "llama3-405b"),
    seq_lens: tuple[int, ...] = FIG7_SEQ_LENS,
    max_cycles: int | None = None,
) -> Fig7Result:
    """Panels (c)&(f): cumulative speedups over the unoptimized configuration."""

    return _run_panel(
        "c,f: cumulative", CUMULATIVE_POLICIES, PolicyConfig(), tier, models, seq_lens, max_cycles
    )
