"""Figure 7: speedups of the Logit operator in the miss-handling-bound regime.

Panels (a)&(d): throttling policies (dyncta, lcs, dynmg) normalised against the
unoptimized run.  Panels (b)&(e): arbitration policies (cobrra, B, MA, BMA),
each combined with dynmg and normalised against dynmg alone.  Panels (c)&(f):
cumulative speedups of dynmg / dynmg+B / dynmg+MA / dynmg+BMA against the
unoptimized run.  Both Llama3-70B and Llama3-405B are evaluated at sequence
lengths 4K, 8K and 16K (scaled down by the selected tier).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.mathutils import geomean
from repro.config.policies import ArbitrationKind, PolicyConfig, ThrottleKind
from repro.config.presets import (
    FIG7_SEQ_LENS,
    llama3_405b_logit,
    llama3_70b_logit,
    table5_system,
)
from repro.config.scale import ScaleTier, scale_experiment
from repro.config.workload import WorkloadConfig
from repro.experiments.reporting import format_series
from repro.sim.results import SimResult
from repro.sweep.executor import run_sweep
from repro.sweep.spec import SweepPoint, resolved_point
from repro.sweep.store import ResultStore

#: Throttling policies of panels (a)&(d) (paper legend names).
THROTTLE_POLICIES = {
    "dyncta": PolicyConfig(throttle=ThrottleKind.DYNCTA),
    "lcs": PolicyConfig(throttle=ThrottleKind.LCS),
    "dynmg": PolicyConfig(throttle=ThrottleKind.DYNMG),
}

#: Arbitration policies of panels (b)&(e); each rides on top of dynmg.
ARBITRATION_POLICIES = {
    "cobrra": PolicyConfig(throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.COBRRA),
    "B": PolicyConfig(throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.BALANCED),
    "MA": PolicyConfig(throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.MSHR_AWARE),
    "BMA": PolicyConfig(
        throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.BALANCED_MSHR_AWARE
    ),
}

#: Cumulative policies of panels (c)&(f).
CUMULATIVE_POLICIES = {
    "dynmg": PolicyConfig(throttle=ThrottleKind.DYNMG),
    "dynmg+B": PolicyConfig(throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.BALANCED),
    "dynmg+MA": PolicyConfig(
        throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.MSHR_AWARE
    ),
    "dynmg+BMA": PolicyConfig(
        throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.BALANCED_MSHR_AWARE
    ),
}


def paper_workload(model: str, seq_len: int) -> WorkloadConfig:
    if model == "llama3-70b":
        return llama3_70b_logit(seq_len)
    if model == "llama3-405b":
        return llama3_405b_logit(seq_len)
    raise ValueError(f"unknown model {model!r}")


@dataclass(slots=True)
class Fig7Result:
    """Speedup series for one panel: model -> seq_len -> policy -> speedup."""

    panel: str
    tier: ScaleTier
    seq_lens: tuple[int, ...]
    #: speedups[model][policy] is a list aligned with ``seq_lens``.
    speedups: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    raw: dict[tuple[str, int, str], SimResult] = field(default_factory=dict)

    def geomean(self, model: str, policy: str) -> float:
        return geomean(self.speedups[model][policy])

    def render(self) -> str:
        blocks = []
        for model, series in self.speedups.items():
            blocks.append(
                format_series(
                    f"Fig 7 ({self.panel}) -- {model} (tier={self.tier.name})",
                    "seq len",
                    [f"{s//1024}K" if s >= 1024 else str(s) for s in self.seq_lens],
                    series,
                )
            )
        return "\n\n".join(blocks)


def _panel_point(
    system,
    workload,
    policy: PolicyConfig,
    label: str,
    model: str,
    seq_len: int,
    tier: ScaleTier,
    max_cycles: int | None,
) -> SweepPoint:
    return resolved_point(
        system, workload, policy, label,
        {"model": model, "policy": label, "seq_len": seq_len, "tier": tier.name},
        max_cycles=max_cycles,
    )


def _run_panel(
    panel: str,
    policies: dict[str, PolicyConfig],
    baseline: PolicyConfig,
    tier: ScaleTier,
    models: tuple[str, ...],
    seq_lens: tuple[int, ...],
    max_cycles: int | None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> Fig7Result:
    result = Fig7Result(panel=panel, tier=tier, seq_lens=tuple(seq_lens))
    base_system = table5_system()

    # Expand the whole panel grid into sweep points, then submit it in one go;
    # identical results to the old serial loop, but parallel when jobs > 1 and
    # resumable when a store is attached.
    cells: list[tuple[str, int, dict[str, SweepPoint]]] = []
    points: list[SweepPoint] = []
    for model in models:
        result.speedups[model] = {name: [] for name in policies}
        for seq_len in seq_lens:
            system, workload = scale_experiment(base_system, paper_workload(model, seq_len), tier)
            cell = {
                "baseline": _panel_point(
                    system, workload, baseline, "baseline", model, seq_len, tier, max_cycles
                )
            }
            for name, policy in policies.items():
                cell[name] = _panel_point(
                    system, workload, policy, name, model, seq_len, tier, max_cycles
                )
            cells.append((model, seq_len, cell))
            points.extend(cell.values())

    report = run_sweep(points, jobs=jobs, store=store).raise_on_failure()
    for model, seq_len, cell in cells:
        base_run = report.result_for(cell["baseline"])
        result.raw[(model, seq_len, "baseline")] = base_run
        for name in policies:
            run = report.result_for(cell[name])
            result.raw[(model, seq_len, name)] = run
            result.speedups[model][name].append(base_run.cycles / run.cycles)
    return result


def run_fig7_throttling(
    tier: ScaleTier = ScaleTier.CI,
    models: tuple[str, ...] = ("llama3-70b", "llama3-405b"),
    seq_lens: tuple[int, ...] = FIG7_SEQ_LENS,
    max_cycles: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> Fig7Result:
    """Panels (a)&(d): throttling speedups over the unoptimized configuration."""

    return _run_panel(
        "a,d: throttling", THROTTLE_POLICIES, PolicyConfig(), tier, models, seq_lens,
        max_cycles, jobs=jobs, store=store,
    )


def run_fig7_arbitration(
    tier: ScaleTier = ScaleTier.CI,
    models: tuple[str, ...] = ("llama3-70b", "llama3-405b"),
    seq_lens: tuple[int, ...] = FIG7_SEQ_LENS,
    max_cycles: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> Fig7Result:
    """Panels (b)&(e): arbitration speedups, each policy + dynmg over dynmg alone."""

    return _run_panel(
        "b,e: arbitration (+dynmg, vs dynmg)",
        ARBITRATION_POLICIES,
        PolicyConfig(throttle=ThrottleKind.DYNMG),
        tier,
        models,
        seq_lens,
        max_cycles,
        jobs=jobs,
        store=store,
    )


def run_fig7_cumulative(
    tier: ScaleTier = ScaleTier.CI,
    models: tuple[str, ...] = ("llama3-70b", "llama3-405b"),
    seq_lens: tuple[int, ...] = FIG7_SEQ_LENS,
    max_cycles: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> Fig7Result:
    """Panels (c)&(f): cumulative speedups over the unoptimized configuration."""

    return _run_panel(
        "c,f: cumulative", CUMULATIVE_POLICIES, PolicyConfig(), tier, models, seq_lens,
        max_cycles, jobs=jobs, store=store,
    )
