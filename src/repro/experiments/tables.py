"""Parameter-sweep experiments behind Tables 2, 3 and 4.

The paper obtains its throttling configuration (sampling period, sub-period,
contention thresholds, in-core C_mem / C_idle bounds) by sweeping; these
harnesses re-run compact versions of those sweeps so the chosen values can be
compared against neighbouring settings.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config.policies import (
    ContentionThresholds,
    InCoreThrottleParams,
    MultiGearParams,
    PolicyConfig,
    ThrottleKind,
)
from repro.config.presets import llama3_70b_logit, table5_system
from repro.config.scale import ScaleTier, scale_experiment
from repro.sim.runner import run_policy


def _base(tier: ScaleTier, seq_len: int):
    return scale_experiment(table5_system(), llama3_70b_logit(seq_len), tier)


def run_table2_sampling_sweep(
    tier: ScaleTier = ScaleTier.CI,
    seq_len: int = 8192,
    sampling_periods: tuple[int, ...] = (500, 1000, 2000, 4000, 8000),
    sub_period_ratio: int = 5,
    max_cycles: int | None = None,
) -> list[dict]:
    """Sweep the global sampling period (Table 2 picks 2000 / sub-period 400)."""

    system, workload = _base(tier, seq_len)
    baseline = run_policy(system, workload, PolicyConfig(), label="unopt", max_cycles=max_cycles)
    rows = []
    for period in sampling_periods:
        policy = PolicyConfig(
            throttle=ThrottleKind.DYNMG,
            multigear=MultiGearParams(sampling_period=period),
            incore=InCoreThrottleParams(sub_period=max(50, period // sub_period_ratio)),
        )
        run = run_policy(
            system, workload, policy, label=f"dynmg@{period}", max_cycles=max_cycles
        )
        rows.append(
            {
                "sampling_period": period,
                "sub_period": max(50, period // sub_period_ratio),
                "cycles": run.cycles,
                "speedup": baseline.cycles / run.cycles,
            }
        )
    return rows


def run_table3_contention_sweep(
    tier: ScaleTier = ScaleTier.CI,
    seq_len: int = 8192,
    threshold_sets: dict[str, ContentionThresholds] | None = None,
    max_cycles: int | None = None,
) -> list[dict]:
    """Compare the Table 3 contention thresholds against looser/tighter settings."""

    if threshold_sets is None:
        threshold_sets = {
            "paper (0.1/0.2/0.375)": ContentionThresholds(),
            "loose (0.2/0.4/0.6)": ContentionThresholds(0.2, 0.4, 0.6),
            "tight (0.05/0.1/0.2)": ContentionThresholds(0.05, 0.1, 0.2),
        }
    system, workload = _base(tier, seq_len)
    baseline = run_policy(system, workload, PolicyConfig(), label="unopt", max_cycles=max_cycles)
    rows = []
    for name, thresholds in threshold_sets.items():
        policy = PolicyConfig(
            throttle=ThrottleKind.DYNMG,
            multigear=MultiGearParams(thresholds=thresholds),
        )
        run = run_policy(system, workload, policy, label=name, max_cycles=max_cycles)
        rows.append(
            {
                "thresholds": name,
                "cycles": run.cycles,
                "speedup": baseline.cycles / run.cycles,
                "stall_ratio": run.cache_stall_ratio,
            }
        )
    return rows


def run_table4_incore_sweep(
    tier: ScaleTier = ScaleTier.CI,
    seq_len: int = 8192,
    c_mem_bounds: tuple[tuple[int, int], ...] = ((250, 180), (350, 250), (150, 100)),
    max_cycles: int | None = None,
) -> list[dict]:
    """Sweep the in-core C_mem bounds around the Table 4 values (250 / 180)."""

    system, workload = _base(tier, seq_len)
    baseline = run_policy(system, workload, PolicyConfig(), label="unopt", max_cycles=max_cycles)
    rows = []
    base_incore = InCoreThrottleParams()
    for upper, lower in c_mem_bounds:
        policy = PolicyConfig(
            throttle=ThrottleKind.DYNMG,
            incore=replace(base_incore, c_mem_upper=upper, c_mem_lower=lower),
        )
        run = run_policy(
            system, workload, policy, label=f"cmem {upper}/{lower}", max_cycles=max_cycles
        )
        rows.append(
            {
                "c_mem_upper": upper,
                "c_mem_lower": lower,
                "cycles": run.cycles,
                "speedup": baseline.cycles / run.cycles,
            }
        )
    return rows
