"""Parameter-sweep experiments behind Tables 2, 3 and 4.

The paper obtains its throttling configuration (sampling period, sub-period,
contention thresholds, in-core C_mem / C_idle bounds) by sweeping; these
harnesses re-run compact versions of those sweeps so the chosen values can be
compared against neighbouring settings.  Each table grid is submitted through
the sweep executor, so the points run in parallel when ``jobs > 1`` and are
served from a :class:`~repro.sweep.store.ResultStore` on re-runs.
"""

from __future__ import annotations

from dataclasses import replace

from repro.api import Scenario
from repro.config.policies import (
    ContentionThresholds,
    InCoreThrottleParams,
    MultiGearParams,
    PolicyConfig,
    ThrottleKind,
)
from repro.config.scale import ScaleTier
from repro.sweep.executor import SweepReport, run_sweep
from repro.sweep.spec import SweepPoint
from repro.sweep.store import ResultStore

#: The workload every table sweep runs on (as in the paper's tuning runs).
TABLE_WORKLOAD = "llama3-70b"


def _run_table_grid(
    tier: ScaleTier,
    seq_len: int,
    labelled_policies: dict[str, PolicyConfig],
    max_cycles: int | None,
    jobs: int,
    store: ResultStore | None,
) -> tuple[SweepReport, dict[str, SweepPoint], SweepPoint]:
    """Submit the unoptimized baseline plus every swept policy as one sweep.

    The swept policies carry custom throttling parameters, so they enter the
    :class:`Scenario` as explicit ``policy_config`` objects with the sweep
    label as display name.
    """

    def point(label: str, policy: str | PolicyConfig) -> SweepPoint:
        scenario = Scenario.create(
            TABLE_WORKLOAD, policy, seq_len=seq_len, tier=tier, max_cycles=max_cycles
        )
        return scenario.to_point(label=label, extra_coords=(("policy", label),))

    baseline = point("unopt", "unopt")
    cells = {label: point(label, policy) for label, policy in labelled_policies.items()}
    report = run_sweep(
        [baseline, *cells.values()], jobs=jobs, store=store
    ).raise_on_failure()
    return report, cells, baseline


def run_table2_sampling_sweep(
    tier: ScaleTier = ScaleTier.CI,
    seq_len: int = 8192,
    sampling_periods: tuple[int, ...] = (500, 1000, 2000, 4000, 8000),
    sub_period_ratio: int = 5,
    max_cycles: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> list[dict]:
    """Sweep the global sampling period (Table 2 picks 2000 / sub-period 400)."""

    policies = {
        f"dynmg@{period}": PolicyConfig(
            throttle=ThrottleKind.DYNMG,
            multigear=MultiGearParams(sampling_period=period),
            incore=InCoreThrottleParams(sub_period=max(50, period // sub_period_ratio)),
        )
        for period in sampling_periods
    }
    report, cells, baseline = _run_table_grid(tier, seq_len, policies, max_cycles, jobs, store)
    base_run = report.result_for(baseline)
    rows = []
    for period in sampling_periods:
        run = report.result_for(cells[f"dynmg@{period}"])
        rows.append(
            {
                "sampling_period": period,
                "sub_period": max(50, period // sub_period_ratio),
                "cycles": run.cycles,
                "speedup": base_run.cycles / run.cycles,
            }
        )
    return rows


def run_table3_contention_sweep(
    tier: ScaleTier = ScaleTier.CI,
    seq_len: int = 8192,
    threshold_sets: dict[str, ContentionThresholds] | None = None,
    max_cycles: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> list[dict]:
    """Compare the Table 3 contention thresholds against looser/tighter settings."""

    if threshold_sets is None:
        threshold_sets = {
            "paper (0.1/0.2/0.375)": ContentionThresholds(),
            "loose (0.2/0.4/0.6)": ContentionThresholds(0.2, 0.4, 0.6),
            "tight (0.05/0.1/0.2)": ContentionThresholds(0.05, 0.1, 0.2),
        }
    policies = {
        name: PolicyConfig(
            throttle=ThrottleKind.DYNMG,
            multigear=MultiGearParams(thresholds=thresholds),
        )
        for name, thresholds in threshold_sets.items()
    }
    report, cells, baseline = _run_table_grid(tier, seq_len, policies, max_cycles, jobs, store)
    base_run = report.result_for(baseline)
    rows = []
    for name in threshold_sets:
        run = report.result_for(cells[name])
        rows.append(
            {
                "thresholds": name,
                "cycles": run.cycles,
                "speedup": base_run.cycles / run.cycles,
                "stall_ratio": run.cache_stall_ratio,
            }
        )
    return rows


def run_table4_incore_sweep(
    tier: ScaleTier = ScaleTier.CI,
    seq_len: int = 8192,
    c_mem_bounds: tuple[tuple[int, int], ...] = ((250, 180), (350, 250), (150, 100)),
    max_cycles: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> list[dict]:
    """Sweep the in-core C_mem bounds around the Table 4 values (250 / 180)."""

    base_incore = InCoreThrottleParams()
    policies = {
        f"cmem {upper}/{lower}": PolicyConfig(
            throttle=ThrottleKind.DYNMG,
            incore=replace(base_incore, c_mem_upper=upper, c_mem_lower=lower),
        )
        for upper, lower in c_mem_bounds
    }
    report, cells, baseline = _run_table_grid(tier, seq_len, policies, max_cycles, jobs, store)
    base_run = report.result_for(baseline)
    rows = []
    for upper, lower in c_mem_bounds:
        run = report.result_for(cells[f"cmem {upper}/{lower}"])
        rows.append(
            {
                "c_mem_upper": upper,
                "c_mem_lower": lower,
                "cycles": run.cycles,
                "speedup": base_run.cycles / run.cycles,
            }
        )
    return rows
