"""Section 6.1: hardware cost of the added arbitration structures."""

from __future__ import annotations

from repro.config.policies import MshrAwareParams
from repro.config.system import L2Config
from repro.hwcost.area import estimate_area

#: Published synthesis results (15 nm, 1.96 GHz), um^2.
PAPER_ARBITER_UM2 = 7312.93
PAPER_HIT_BUFFER_UM2 = 3088.61


def run_hwcost(
    l2: L2Config | None = None,
    mshr_aware: MshrAwareParams | None = None,
    num_cores: int = 16,
) -> list[dict]:
    """Estimate the arbiter / hit-buffer area and compare against the paper."""

    reports = estimate_area(l2=l2, mshr_aware=mshr_aware, num_cores=num_cores)
    paper = {"arbiter": PAPER_ARBITER_UM2, "hit_buffer": PAPER_HIT_BUFFER_UM2}
    rows = []
    for name, report in reports.items():
        rows.append(
            {
                "structure": name,
                "storage_bits": report.storage_bits,
                "model_um2": report.total_um2,
                "paper_um2": paper[name],
                "ratio": report.total_um2 / paper[name],
            }
        )
    return rows
