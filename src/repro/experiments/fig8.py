"""Figure 8: the mechanism behind the speedup (Llama3-70B @ 8K).

For the unoptimized, dynmg and dynmg+BMA configurations the figure reports
normalised performance, MSHR entry utilisation, L2 hit rate, MSHR hit rate and
average DRAM bandwidth.  This experiment reproduces the same five series for an
arbitrary list of policies (default: the paper's three-step progression plus
the intermediate dynmg+B / dynmg+MA points).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import Scenario
from repro.config.policies import PolicyConfig
from repro.config.scale import ScaleTier, scale_seq_len
from repro.experiments.reporting import format_grid
from repro.sim.results import SimResult
from repro.sweep.executor import run_sweep
from repro.sweep.store import ResultStore

#: Fig 8's progression: display name -> policy label (registry-resolved).
DEFAULT_POLICIES = {
    "unoptimized": "unopt",
    "dynmg": "dynmg",
    "dynmg+B": "dynmg+B",
    "dynmg+MA": "dynmg+MA",
    "dynmg+BMA": "dynmg+BMA",
}


@dataclass(slots=True)
class Fig8Result:
    """Per-policy detailed statistics for the mechanism analysis."""

    tier: ScaleTier
    seq_len: int
    rows: list[dict] = field(default_factory=list)
    raw: dict[str, SimResult] = field(default_factory=dict)

    def series(self, metric: str) -> dict[str, float]:
        return {row["policy"]: row[metric] for row in self.rows}

    def render(self) -> str:
        return format_grid(
            f"Fig 8 -- llama3-70b @ {self.seq_len} (tier={self.tier.name})", self.rows
        )


def run_fig8(
    tier: ScaleTier = ScaleTier.CI,
    seq_len: int = 8192,
    policies: dict[str, str | PolicyConfig] | None = None,
    max_cycles: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> Fig8Result:
    """Reproduce the Fig 8 statistics panel."""

    policies = policies if policies is not None else DEFAULT_POLICIES
    result = Fig8Result(tier=tier, seq_len=scale_seq_len(seq_len, tier))

    points = {
        name: Scenario.create(
            "llama3-70b", policy, seq_len=seq_len, tier=tier, max_cycles=max_cycles
        ).to_point(label=name, extra_coords=(("policy", name),))
        for name, policy in policies.items()
    }
    report = run_sweep(list(points.values()), jobs=jobs, store=store).raise_on_failure()

    baseline: SimResult | None = None
    for name in policies:
        run = report.result_for(points[name])
        result.raw[name] = run
        if baseline is None:
            baseline = run
        result.rows.append(
            {
                "policy": name,
                "performance": baseline.cycles / run.cycles,
                "mshr_entry_util": run.mshr_entry_utilization,
                "l2_hit_rate": run.l2_hit_rate,
                "mshr_hit_rate": run.mshr_hit_rate,
                "dram_bw_gbps": run.dram_bandwidth_gbps,
                "dram_accesses": run.dram_accesses,
                "stall_ratio": run.cache_stall_ratio,
            }
        )
    return result
