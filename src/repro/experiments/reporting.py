"""Plain-text formatting of experiment results (the rows/series the paper plots)."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    value_format: str = "{:.3f}",
) -> str:
    """Format one figure panel: rows are policies, columns are x-axis points."""

    col_width = max(10, max((len(str(x)) for x in x_values), default=10) + 2)
    name_width = max(14, max((len(name) for name in series), default=14) + 2)
    lines = [title, "-" * len(title)]
    header = f"{x_label:<{name_width}}" + "".join(f"{str(x):>{col_width}}" for x in x_values)
    lines.append(header)
    for name, values in series.items():
        cells = "".join(f"{value_format.format(v):>{col_width}}" for v in values)
        lines.append(f"{name:<{name_width}}{cells}")
    return "\n".join(lines)


def format_grid(title: str, rows: Sequence[Mapping[str, object]]) -> str:
    """Format a list of dict rows as an aligned table (for Fig 8-style panels)."""

    if not rows:
        return f"{title}\n(no data)"
    columns = list(rows[0].keys())
    widths = {
        col: max(len(col), max(len(_fmt(row[col])) for row in rows)) + 2 for col in columns
    }
    lines = [title, "-" * len(title)]
    lines.append("".join(f"{col:>{widths[col]}}" for col in columns))
    for row in rows:
        lines.append("".join(f"{_fmt(row[col]):>{widths[col]}}" for col in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
