"""Experiment harnesses: one module per table/figure of the paper's evaluation."""

from repro.experiments.fig7 import (
    Fig7Result,
    run_fig7_arbitration,
    run_fig7_cumulative,
    run_fig7_throttling,
)
from repro.experiments.fig8 import Fig8Result, run_fig8
from repro.experiments.fig9 import Fig9Result, run_fig9
from repro.experiments.hwcost_exp import run_hwcost
from repro.experiments.reporting import format_grid, format_series
from repro.experiments.tables import (
    run_table2_sampling_sweep,
    run_table3_contention_sweep,
    run_table4_incore_sweep,
)

__all__ = [
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "format_grid",
    "format_series",
    "run_fig7_arbitration",
    "run_fig7_cumulative",
    "run_fig7_throttling",
    "run_fig8",
    "run_fig9",
    "run_hwcost",
    "run_table2_sampling_sweep",
    "run_table3_contention_sweep",
    "run_table4_incore_sweep",
]
