"""Figure 9: throttling and arbitration when the cache size is also a bottleneck.

32K-token sequences are run against 16, 32 and 64 MB L2 configurations (scaled
by the selected tier); every policy is normalised against the unoptimized run
at the 32 MB point, exactly as in the paper.  Grid cells are named through
:class:`repro.api.Scenario`; the default legend is ``{display name: policy
label}`` and explicit :class:`PolicyConfig` values are also accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import Scenario
from repro.config.policies import PolicyConfig
from repro.config.presets import FIG9_L2_MIB, FIG9_SEQ_LEN
from repro.config.scale import ScaleTier
from repro.experiments.reporting import format_series
from repro.sim.results import SimResult
from repro.sweep.executor import run_sweep
from repro.sweep.spec import SweepPoint
from repro.sweep.store import ResultStore

#: Fig 9 legend: display name -> policy label (resolved via the registry).
FIG9_POLICIES = {
    "unoptimized": "unopt",
    "dyncta": "dyncta",
    "lcs": "lcs",
    "cobrra": "cobrra",
    "dynmg": "dynmg",
    "dynmg+cobrra": "dynmg+cobrra",
    "dynmg+BMA": "dynmg+BMA",
}

#: The L2 capacity the paper normalises against.
REFERENCE_L2_MIB = 32


@dataclass(slots=True)
class Fig9Result:
    """Speedup series: model -> policy -> list aligned with ``l2_sizes_mib``."""

    tier: ScaleTier
    seq_len: int
    l2_sizes_mib: tuple[int, ...]
    speedups: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    raw: dict[tuple[str, int, str], SimResult] = field(default_factory=dict)

    def render(self) -> str:
        blocks = []
        for model, series in self.speedups.items():
            blocks.append(
                format_series(
                    f"Fig 9 -- {model} @ {self.seq_len} tokens (tier={self.tier.name}, "
                    f"normalised to unoptimized@{REFERENCE_L2_MIB}MB)",
                    "L2 size",
                    [f"{m}MB" for m in self.l2_sizes_mib],
                    series,
                )
            )
        return "\n\n".join(blocks)


def _grid_point(
    model: str,
    seq_len: int,
    policy: str | PolicyConfig,
    label: str,
    l2_mib: int,
    tier: ScaleTier,
    max_cycles: int | None,
) -> SweepPoint:
    scenario = Scenario.create(
        model, policy, seq_len=seq_len, l2_mib=l2_mib, tier=tier, max_cycles=max_cycles
    )
    return scenario.to_point(label=label, extra_coords=(("policy", label),))


def run_fig9(
    tier: ScaleTier = ScaleTier.CI,
    models: tuple[str, ...] = ("llama3-70b", "llama3-405b"),
    seq_len: int = FIG9_SEQ_LEN,
    l2_sizes_mib: tuple[int, ...] = FIG9_L2_MIB,
    policies: dict[str, str | PolicyConfig] | None = None,
    max_cycles: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> Fig9Result:
    """Reproduce the Fig 9 cache-size sweep (in parallel when ``jobs > 1``)."""

    policies = policies if policies is not None else FIG9_POLICIES
    result = Fig9Result(tier=tier, seq_len=seq_len, l2_sizes_mib=tuple(l2_sizes_mib))

    # Expand every (model, l2, policy) cell -- plus the per-model unoptimized
    # reference at the 32 MB (scaled) configuration -- into one sweep.  When
    # "unoptimized" is itself part of the grid at the reference capacity, the
    # executor's content-hash dedup simulates it only once.
    grids: list[tuple[str, SweepPoint, list[tuple[int, dict[str, SweepPoint]]]]] = []
    points: list[SweepPoint] = []
    for model in models:
        ref_point = _grid_point(
            model, seq_len, "unopt", "reference", REFERENCE_L2_MIB, tier, max_cycles
        )
        points.append(ref_point)
        cells: list[tuple[int, dict[str, SweepPoint]]] = []
        for l2_mib in l2_sizes_mib:
            cell = {
                name: _grid_point(model, seq_len, policy, name, l2_mib, tier, max_cycles)
                for name, policy in policies.items()
            }
            cells.append((l2_mib, cell))
            points.extend(cell.values())
        grids.append((model, ref_point, cells))

    report = run_sweep(points, jobs=jobs, store=store).raise_on_failure()
    for model, ref_point, cells in grids:
        result.speedups[model] = {name: [] for name in policies}
        reference = report.result_for(ref_point)
        result.raw[(model, REFERENCE_L2_MIB, "reference")] = reference
        for l2_mib, cell in cells:
            for name, point in cell.items():
                run = report.result_for(point)
                result.raw[(model, l2_mib, name)] = run
                result.speedups[model][name].append(reference.cycles / run.cycles)
    return result
