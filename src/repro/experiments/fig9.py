"""Figure 9: throttling and arbitration when the cache size is also a bottleneck.

32K-token sequences are run against 16, 32 and 64 MB L2 configurations (scaled
by the selected tier); every policy is normalised against the unoptimized run
at the 32 MB point, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.policies import ArbitrationKind, PolicyConfig, ThrottleKind
from repro.config.presets import (
    FIG9_L2_MIB,
    FIG9_SEQ_LEN,
    llama3_405b_logit,
    llama3_70b_logit,
    table5_system_with_l2,
)
from repro.config.scale import ScaleTier, scale_experiment
from repro.config.workload import WorkloadConfig
from repro.experiments.reporting import format_series
from repro.sim.results import SimResult
from repro.sim.runner import run_policy

FIG9_POLICIES = {
    "unoptimized": PolicyConfig(),
    "dyncta": PolicyConfig(throttle=ThrottleKind.DYNCTA),
    "lcs": PolicyConfig(throttle=ThrottleKind.LCS),
    "cobrra": PolicyConfig(arbitration=ArbitrationKind.COBRRA),
    "dynmg": PolicyConfig(throttle=ThrottleKind.DYNMG),
    "dynmg+cobrra": PolicyConfig(
        throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.COBRRA
    ),
    "dynmg+BMA": PolicyConfig(
        throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.BALANCED_MSHR_AWARE
    ),
}

#: The L2 capacity the paper normalises against.
REFERENCE_L2_MIB = 32


@dataclass(slots=True)
class Fig9Result:
    """Speedup series: model -> policy -> list aligned with ``l2_sizes_mib``."""

    tier: ScaleTier
    seq_len: int
    l2_sizes_mib: tuple[int, ...]
    speedups: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    raw: dict[tuple[str, int, str], SimResult] = field(default_factory=dict)

    def render(self) -> str:
        blocks = []
        for model, series in self.speedups.items():
            blocks.append(
                format_series(
                    f"Fig 9 -- {model} @ {self.seq_len} tokens (tier={self.tier.name}, "
                    f"normalised to unoptimized@{REFERENCE_L2_MIB}MB)",
                    "L2 size",
                    [f"{m}MB" for m in self.l2_sizes_mib],
                    series,
                )
            )
        return "\n\n".join(blocks)


def _workload(model: str, seq_len: int) -> WorkloadConfig:
    if model == "llama3-70b":
        return llama3_70b_logit(seq_len)
    if model == "llama3-405b":
        return llama3_405b_logit(seq_len)
    raise ValueError(f"unknown model {model!r}")


def run_fig9(
    tier: ScaleTier = ScaleTier.CI,
    models: tuple[str, ...] = ("llama3-70b", "llama3-405b"),
    seq_len: int = FIG9_SEQ_LEN,
    l2_sizes_mib: tuple[int, ...] = FIG9_L2_MIB,
    policies: dict[str, PolicyConfig] | None = None,
    max_cycles: int | None = None,
) -> Fig9Result:
    """Reproduce the Fig 9 cache-size sweep."""

    policies = policies if policies is not None else FIG9_POLICIES
    result = Fig9Result(tier=tier, seq_len=seq_len, l2_sizes_mib=tuple(l2_sizes_mib))

    for model in models:
        result.speedups[model] = {name: [] for name in policies}
        # Reference: unoptimized at the 32 MB (scaled) configuration.
        ref_system, workload = scale_experiment(
            table5_system_with_l2(REFERENCE_L2_MIB), _workload(model, seq_len), tier
        )
        reference = run_policy(
            ref_system, workload, PolicyConfig(), label="reference", max_cycles=max_cycles
        )
        result.raw[(model, REFERENCE_L2_MIB, "reference")] = reference

        for l2_mib in l2_sizes_mib:
            system, workload = scale_experiment(
                table5_system_with_l2(l2_mib), _workload(model, seq_len), tier
            )
            for name, policy in policies.items():
                run = run_policy(system, workload, policy, label=name, max_cycles=max_cycles)
                result.raw[(model, l2_mib, name)] = run
                result.speedups[model][name].append(reference.cycles / run.cycles)
    return result
