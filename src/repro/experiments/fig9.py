"""Figure 9: throttling and arbitration when the cache size is also a bottleneck.

32K-token sequences are run against 16, 32 and 64 MB L2 configurations (scaled
by the selected tier); every policy is normalised against the unoptimized run
at the 32 MB point, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.policies import ArbitrationKind, PolicyConfig, ThrottleKind
from repro.config.presets import (
    FIG9_L2_MIB,
    FIG9_SEQ_LEN,
    llama3_405b_logit,
    llama3_70b_logit,
    table5_system_with_l2,
)
from repro.config.scale import ScaleTier, scale_experiment
from repro.config.workload import WorkloadConfig
from repro.experiments.reporting import format_series
from repro.sim.results import SimResult
from repro.sweep.executor import run_sweep
from repro.sweep.spec import SweepPoint, resolved_point
from repro.sweep.store import ResultStore

FIG9_POLICIES = {
    "unoptimized": PolicyConfig(),
    "dyncta": PolicyConfig(throttle=ThrottleKind.DYNCTA),
    "lcs": PolicyConfig(throttle=ThrottleKind.LCS),
    "cobrra": PolicyConfig(arbitration=ArbitrationKind.COBRRA),
    "dynmg": PolicyConfig(throttle=ThrottleKind.DYNMG),
    "dynmg+cobrra": PolicyConfig(
        throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.COBRRA
    ),
    "dynmg+BMA": PolicyConfig(
        throttle=ThrottleKind.DYNMG, arbitration=ArbitrationKind.BALANCED_MSHR_AWARE
    ),
}

#: The L2 capacity the paper normalises against.
REFERENCE_L2_MIB = 32


@dataclass(slots=True)
class Fig9Result:
    """Speedup series: model -> policy -> list aligned with ``l2_sizes_mib``."""

    tier: ScaleTier
    seq_len: int
    l2_sizes_mib: tuple[int, ...]
    speedups: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    raw: dict[tuple[str, int, str], SimResult] = field(default_factory=dict)

    def render(self) -> str:
        blocks = []
        for model, series in self.speedups.items():
            blocks.append(
                format_series(
                    f"Fig 9 -- {model} @ {self.seq_len} tokens (tier={self.tier.name}, "
                    f"normalised to unoptimized@{REFERENCE_L2_MIB}MB)",
                    "L2 size",
                    [f"{m}MB" for m in self.l2_sizes_mib],
                    series,
                )
            )
        return "\n\n".join(blocks)


def _workload(model: str, seq_len: int) -> WorkloadConfig:
    if model == "llama3-70b":
        return llama3_70b_logit(seq_len)
    if model == "llama3-405b":
        return llama3_405b_logit(seq_len)
    raise ValueError(f"unknown model {model!r}")


def _grid_point(
    system,
    workload,
    policy: PolicyConfig,
    label: str,
    model: str,
    seq_len: int,
    l2_mib: int,
    tier: ScaleTier,
    max_cycles: int | None,
) -> SweepPoint:
    return resolved_point(
        system, workload, policy, label,
        {
            "l2_mib": l2_mib,
            "model": model,
            "policy": label,
            "seq_len": seq_len,
            "tier": tier.name,
        },
        max_cycles=max_cycles,
    )


def run_fig9(
    tier: ScaleTier = ScaleTier.CI,
    models: tuple[str, ...] = ("llama3-70b", "llama3-405b"),
    seq_len: int = FIG9_SEQ_LEN,
    l2_sizes_mib: tuple[int, ...] = FIG9_L2_MIB,
    policies: dict[str, PolicyConfig] | None = None,
    max_cycles: int | None = None,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> Fig9Result:
    """Reproduce the Fig 9 cache-size sweep (in parallel when ``jobs > 1``)."""

    policies = policies if policies is not None else FIG9_POLICIES
    result = Fig9Result(tier=tier, seq_len=seq_len, l2_sizes_mib=tuple(l2_sizes_mib))

    # Expand every (model, l2, policy) cell -- plus the per-model unoptimized
    # reference at the 32 MB (scaled) configuration -- into one sweep.  When
    # "unoptimized" is itself part of the grid at the reference capacity, the
    # executor's content-hash dedup simulates it only once.
    grids: list[tuple[str, SweepPoint, list[tuple[int, dict[str, SweepPoint]]]]] = []
    points: list[SweepPoint] = []
    for model in models:
        ref_system, workload = scale_experiment(
            table5_system_with_l2(REFERENCE_L2_MIB), _workload(model, seq_len), tier
        )
        ref_point = _grid_point(
            ref_system, workload, PolicyConfig(), "reference",
            model, seq_len, REFERENCE_L2_MIB, tier, max_cycles,
        )
        points.append(ref_point)
        cells: list[tuple[int, dict[str, SweepPoint]]] = []
        for l2_mib in l2_sizes_mib:
            system, workload = scale_experiment(
                table5_system_with_l2(l2_mib), _workload(model, seq_len), tier
            )
            cell = {
                name: _grid_point(
                    system, workload, policy, name, model, seq_len, l2_mib, tier, max_cycles
                )
                for name, policy in policies.items()
            }
            cells.append((l2_mib, cell))
            points.extend(cell.values())
        grids.append((model, ref_point, cells))

    report = run_sweep(points, jobs=jobs, store=store).raise_on_failure()
    for model, ref_point, cells in grids:
        result.speedups[model] = {name: [] for name in policies}
        reference = report.result_for(ref_point)
        result.raw[(model, REFERENCE_L2_MIB, "reference")] = reference
        for l2_mib, cell in cells:
            for name, point in cell.items():
                run = report.result_for(point)
                result.raw[(model, l2_mib, name)] = run
                result.speedups[model][name].append(reference.cycles / run.cycles)
    return result
