"""Analytical performance model (the fast, stall-free half of the hybrid flow).

This is the kind of estimate a Timeloop-style analytical model produces: unique
traffic per memory level and a stall-free latency bound assuming perfect
overlap of compute and memory.  The paper argues such models are insufficient
for cache research (they ignore MSHR stalls, queueing and DRAM row events) --
which is exactly how this module is used here: as a *lower bound* the
cycle-level simulator is validated against, and as a quick estimator for
examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.mathutils import ceil_div, safe_div
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig
from repro.dataflow.constraints import DataflowConstraints
from repro.dataflow.mapper import Mapping, build_mapping
from repro.workloads.operators import make_operator


@dataclass(frozen=True, slots=True)
class AnalyticalEstimate:
    """Stall-free estimate of one decode-operator execution."""

    compute_cycles: int          # vector-unit-bound cycles (all cores busy)
    dram_bound_cycles: int       # unique DRAM traffic / peak bandwidth
    l2_bound_cycles: int         # L2 accesses / aggregate slice throughput
    total_dram_bytes: int        # unique bytes that must come from DRAM
    total_l2_accesses: int       # line requests reaching the LLC
    thread_blocks: int
    requests_per_thread_block: float

    @property
    def stall_free_cycles(self) -> int:
        """Roofline-style bound: the slowest of the three resources."""

        return max(self.compute_cycles, self.dram_bound_cycles, self.l2_bound_cycles)

    @property
    def bottleneck(self) -> str:
        bounds = {
            "compute": self.compute_cycles,
            "dram": self.dram_bound_cycles,
            "l2": self.l2_bound_cycles,
        }
        return max(bounds, key=bounds.get)

    def dram_bandwidth_gbps(self, frequency_ghz: float) -> float:
        """Average DRAM bandwidth implied by the stall-free estimate."""

        seconds = safe_div(self.stall_free_cycles, frequency_ghz * 1e9)
        return safe_div(self.total_dram_bytes, seconds) / 1e9


def analyze(
    workload: WorkloadConfig,
    system: SystemConfig,
    mapping: Mapping | None = None,
    constraints: DataflowConstraints | None = None,
) -> AnalyticalEstimate:
    """Estimate stall-free execution of ``workload`` on ``system``."""

    workload.validate()
    system.validate()
    operator = make_operator(workload)
    if mapping is None:
        mapping = build_mapping(operator, system, constraints)

    line = system.l2.line_size
    space = operator.space

    # --- L2 request counts (line granularity, after vector coalescing) ------------
    kv_lines_per_row = ceil_div(operator.kv_row_bytes(), line)
    query_lines_per_block = ceil_div(operator.query_row_bytes(), line)
    output_lines_per_block = ceil_div(mapping.inner_tile * operator.element_bytes, line)

    kv_rows_per_block = mapping.inner_tile if operator.reduction_axis == "d" else space.l
    blocks = mapping.num_thread_blocks
    requests_per_block = (
        query_lines_per_block
        + kv_rows_per_block * kv_lines_per_row
        + output_lines_per_block
    )
    total_l2_accesses = blocks * requests_per_block

    # --- unique DRAM traffic -------------------------------------------------------
    layout = operator.layout
    unique_bytes = layout.kv.size_bytes + layout.query.size_bytes + layout.output.size_bytes
    # Output lines are written back (write-allocate: one fill plus one writeback).
    dram_bytes = unique_bytes + layout.output.size_bytes

    # --- resource bounds -----------------------------------------------------------
    # Compute: one vector MAC per KV row per output group of vector_elements.
    macs = blocks * kv_rows_per_block * ceil_div(
        space.d if operator.reduction_axis == "d" else space.l, mapping.vector_elements
    )
    compute_cycles = ceil_div(
        macs * system.core.compute_cycles_per_vector_mac, system.core.num_cores
    )

    # DRAM: unique bytes over peak bandwidth, expressed in core cycles.
    bytes_per_core_cycle = system.dram.peak_bandwidth_gbps * 1e9 / (system.frequency_ghz * 1e9)
    dram_bound_cycles = ceil_div(dram_bytes, max(1, int(bytes_per_core_cycle)))

    # L2: each slice serves one request per cycle.
    l2_bound_cycles = ceil_div(total_l2_accesses, system.l2.num_slices)

    return AnalyticalEstimate(
        compute_cycles=compute_cycles,
        dram_bound_cycles=dram_bound_cycles,
        l2_bound_cycles=l2_bound_cycles,
        total_dram_bytes=dram_bytes,
        total_l2_accesses=total_l2_accesses,
        thread_blocks=blocks,
        requests_per_thread_block=requests_per_block,
    )
