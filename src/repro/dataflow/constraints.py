"""Dataflow constraints of §6.2.2.

The paper adds two constraints to the Timeloop mapper plus a thread-block-size
rule that was found empirically:

1. *Cache-line-complete vector access*: the fastest (vectorised) axis assigned
   to each vector core must cover a whole KV row so that cache-line accesses
   are complete -- for the Logit operator this is the ``d`` axis.
2. *No false sharing of AttScore*: at least 64 bytes worth of elements of the
   ``l`` dimension must be mapped to the innermost L1 temporal level, so one
   output cache line is produced by exactly one core.
3. *Thread-block size*: each thread block covers one or two output cache lines
   (larger blocks were observed to reduce locality).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True, slots=True)
class DataflowConstraints:
    """Constraint knobs for the mapper."""

    vector_axis: str = "d"
    #: Minimum bytes of the output's innermost dim kept within one thread block.
    min_inner_bytes: int = 64
    #: Output cache lines covered by one thread block (paper: 1-2 is best).
    output_lines_per_block: int = 1
    line_size: int = 64

    def validate(self) -> "DataflowConstraints":
        if self.vector_axis not in ("d", "l"):
            raise ConfigError("vector_axis must be 'd' or 'l'")
        if self.min_inner_bytes <= 0:
            raise ConfigError("min_inner_bytes must be positive")
        if self.output_lines_per_block < 1:
            raise ConfigError("output_lines_per_block must be at least 1")
        if self.line_size <= 0:
            raise ConfigError("line_size must be positive")
        return self

    def inner_tile_elements(self, element_bytes: int) -> int:
        """Minimum number of output elements per thread block (constraint 2 & 3).

        A thread block must cover at least ``min_inner_bytes`` of the output's
        innermost dimension and exactly ``output_lines_per_block`` cache lines.
        """

        if element_bytes <= 0:
            raise ConfigError("element_bytes must be positive")
        per_line = self.line_size // element_bytes
        minimum = self.min_inner_bytes // element_bytes
        tile = per_line * self.output_lines_per_block
        return max(tile, minimum)
