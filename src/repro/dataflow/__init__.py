"""Analytical dataflow model: the Timeloop substitute of the hybrid framework.

The paper's flow (Fig 6) is ``operator -> Timeloop mapping -> memory trace ->
Ramulator2``.  This package provides the first arrow: a loop-nest mapping
representation, a constrained mapper implementing the two hand-written dataflow
constraints of §6.2.2, and an analytical traffic/latency model used both for
sanity-checking the cycle-level simulator and for fast design-space sweeps.
"""

from repro.dataflow.analytical import AnalyticalEstimate, analyze
from repro.dataflow.constraints import DataflowConstraints
from repro.dataflow.loopnest import Loop, LoopNest, MappingLevel
from repro.dataflow.mapper import Mapping, build_mapping
from repro.dataflow.ordering import ThreadBlockOrdering

__all__ = [
    "AnalyticalEstimate",
    "DataflowConstraints",
    "Loop",
    "LoopNest",
    "Mapping",
    "MappingLevel",
    "ThreadBlockOrdering",
    "analyze",
    "build_mapping",
]
