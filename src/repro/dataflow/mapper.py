"""Constrained mapper: produce a legal tiled mapping for a decode operator.

This plays the role Timeloop plays in the paper's flow: given the operator
shape, the architecture and the hand-written constraints of §6.2.2, emit a
mapping (loop nest + thread-block tiling) that the trace generator can unroll
into per-core memory traces.  The mapping is deterministic and human-readable
(``Mapping.render``), mirroring how the paper's flow also accepts hand-written
mapping files.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.mathutils import ceil_div
from repro.config.system import SystemConfig
from repro.dataflow.constraints import DataflowConstraints
from repro.dataflow.loopnest import LoopNest, MappingLevel
from repro.dataflow.ordering import ThreadBlockOrdering
from repro.workloads.operators import DecodeOperator


@dataclass(frozen=True, slots=True)
class Mapping:
    """A complete mapping of a decode operator onto the simulated system."""

    #: Output elements (along the operator's innermost output dim) per thread block.
    inner_tile: int
    #: Number of thread blocks along each of (h, g, l_tiles).
    num_h: int
    num_g: int
    num_inner_tiles: int
    #: Dispatch order of thread blocks.
    ordering: ThreadBlockOrdering
    #: The explicit loop nest (for inspection / documentation).
    nest: LoopNest
    #: Reduction-axis extent handled by one vector instruction.
    vector_elements: int

    @property
    def num_thread_blocks(self) -> int:
        return self.num_h * self.num_g * self.num_inner_tiles

    def thread_block_coords(self):
        """Yield (h, g, inner_tile_index) in dispatch order."""

        return self.ordering.iterate(self.num_h, self.num_g, self.num_inner_tiles)

    def render(self) -> str:
        header = (
            f"# mapping: {self.num_thread_blocks} thread blocks "
            f"({self.num_h} h x {self.num_g} g x {self.num_inner_tiles} tiles of "
            f"{self.inner_tile} outputs), ordering={self.ordering.value}\n"
        )
        return header + self.nest.render()


def build_mapping(
    operator: DecodeOperator,
    system: SystemConfig,
    constraints: DataflowConstraints | None = None,
    ordering: ThreadBlockOrdering = ThreadBlockOrdering.GQA_SHARED,
) -> Mapping:
    """Build the constrained mapping used throughout the paper's evaluation.

    The mapping tiles the output's innermost dimension into thread blocks of
    ``constraints.output_lines_per_block`` cache lines, keeps the reduction axis
    (``d`` for Logit) fully inside each vector instruction (constraint 1) and
    dispatches thread blocks in GQA-shared order by default.
    """

    constraints = (constraints or DataflowConstraints(line_size=system.l2.line_size)).validate()
    if constraints.line_size != system.l2.line_size:
        raise ConfigError(
            "constraints.line_size must match the system cache line size "
            f"({constraints.line_size} != {system.l2.line_size})"
        )

    space = operator.space
    element_bytes = operator.element_bytes

    # Constraint 1: the reduction axis is fully covered by the vector unit.  The
    # vector core is "128 elements" wide which matches the head dimension of the
    # evaluated models; wider reduction axes simply take multiple vector steps.
    vector_elements = min(space.d if operator.reduction_axis == "d" else space.l,
                          system.core.vector_lanes)

    inner_extent = operator.output_extent()
    inner_tile = constraints.inner_tile_elements(element_bytes)
    if inner_tile > inner_extent:
        inner_tile = inner_extent
    num_inner_tiles = ceil_div(inner_extent, inner_tile)

    nest = LoopNest()
    nest.add("h", space.h, MappingLevel.GLOBAL_TEMPORAL)
    if operator.reduction_axis == "d":
        # Logit: output inner dim is l; reduction over d sits in the vector unit.
        nest.add("l", num_inner_tiles, MappingLevel.GLOBAL_TEMPORAL)
        nest.add("g", space.g, MappingLevel.CORE_SPATIAL)
        nest.add("l", inner_tile, MappingLevel.L1_TEMPORAL)
        reduction_steps = ceil_div(space.d, vector_elements)
        nest.add("d", reduction_steps, MappingLevel.L1_TEMPORAL)
        nest.add("d", vector_elements, MappingLevel.VECTOR)
        full = {"h": space.h, "g": space.g, "l": num_inner_tiles * inner_tile,
                "d": reduction_steps * vector_elements}
    else:
        # Attend: output inner dim is d; reduction over l.
        nest.add("d", num_inner_tiles, MappingLevel.GLOBAL_TEMPORAL)
        nest.add("g", space.g, MappingLevel.CORE_SPATIAL)
        nest.add("d", inner_tile, MappingLevel.L1_TEMPORAL)
        reduction_steps = ceil_div(space.l, vector_elements)
        nest.add("l", reduction_steps, MappingLevel.L1_TEMPORAL)
        nest.add("l", vector_elements, MappingLevel.VECTOR)
        full = {"h": space.h, "g": space.g, "d": num_inner_tiles * inner_tile,
                "l": reduction_steps * vector_elements}

    # The nest may over-cover the last partial tile; validate against the rounded
    # extents so the tiling arithmetic itself is checked.
    nest.validate_against(full)

    return Mapping(
        inner_tile=inner_tile,
        num_h=space.h,
        num_g=space.g,
        num_inner_tiles=num_inner_tiles,
        ordering=ordering,
        nest=nest,
        vector_elements=vector_elements,
    )
