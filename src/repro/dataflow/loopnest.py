"""Loop-nest / mapping intermediate representation.

A *mapping* in the Timeloop sense is a hierarchy of tiled loops, each bound to
either a temporal level (L1, L2, DRAM) or a spatial level (across cores /
vector lanes).  The representation here is deliberately small: the decode
operators only have four loop dimensions (h, g, l, d), and the reproduction
only needs to express the mappings the paper constrains (§6.2.2), plus be
printable in a human-readable form so hand-written mappings can be reviewed the
same way Timeloop mapping files are.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import ConfigError

#: Canonical loop-dimension names of the decode operators.
DIMS = ("h", "g", "l", "d")


class MappingLevel(enum.Enum):
    """Where a tiled loop executes."""

    VECTOR = "vector"        # spatial, across vector lanes inside a core
    L1_TEMPORAL = "l1"       # temporal, per thread block (innermost core loop)
    CORE_SPATIAL = "cores"   # spatial, thread blocks across cores
    GLOBAL_TEMPORAL = "dram" # temporal, outer loop over thread blocks


@dataclass(frozen=True, slots=True)
class Loop:
    """One tiled loop: dimension name, tile extent and the level it is bound to."""

    dim: str
    extent: int
    level: MappingLevel

    def __post_init__(self) -> None:
        if self.dim not in DIMS:
            raise ConfigError(f"unknown loop dimension {self.dim!r}; expected one of {DIMS}")
        if self.extent <= 0:
            raise ConfigError(f"loop extent must be positive, got {self.extent}")

    def render(self) -> str:
        return f"for {self.dim} in [0:{self.extent})  @ {self.level.value}"


@dataclass(slots=True)
class LoopNest:
    """An ordered list of loops, outermost first."""

    loops: list[Loop] = field(default_factory=list)

    def add(self, dim: str, extent: int, level: MappingLevel) -> "LoopNest":
        self.loops.append(Loop(dim, extent, level))
        return self

    def extent_product(self, dim: str) -> int:
        """Product of tile extents of ``dim`` across all levels."""

        product = 1
        for loop in self.loops:
            if loop.dim == dim:
                product *= loop.extent
        return product

    def loops_at(self, level: MappingLevel) -> list[Loop]:
        return [loop for loop in self.loops if loop.level == level]

    def validate_against(self, full_extents: dict[str, int]) -> None:
        """Check that tiling factors multiply back to the full iteration space."""

        for dim, extent in full_extents.items():
            product = self.extent_product(dim)
            if product != extent:
                raise ConfigError(
                    f"loop nest covers {product} iterations of {dim!r} "
                    f"but the operator needs {extent}"
                )

    def render(self) -> str:
        """Human-readable mapping, in the style of a Timeloop mapping printout."""

        lines = []
        indent = 0
        for loop in self.loops:
            lines.append("  " * indent + loop.render())
            indent += 1
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.loops)
