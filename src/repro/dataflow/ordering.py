"""Thread-block dispatch orderings.

The order in which thread blocks enter the global scheduling queue determines
how much temporal locality *concurrently running* cores can exploit.  The
GQA-shared ordering (the paper's hardware-friendly default) dispatches the G
query heads of one (h, l-tile) pair back to back, so cores that stay roughly in
lock-step touch the same K rows at the same time -- the source of MSHR hits in
Fig 8.  The sequential ordering is retained as an ablation.
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.common.errors import ConfigError


class ThreadBlockOrdering(enum.Enum):
    """Order of the (h, l_tile, g) thread-block space in the dispatch queue."""

    #: h outermost, then l-tile, then g innermost (consecutive blocks share K rows).
    GQA_SHARED = "gqa-shared"
    #: h outermost, then g, then l-tile innermost (no sharing between neighbours).
    SEQUENTIAL = "sequential"

    def iterate(self, num_h: int, num_g: int, num_l_tiles: int) -> Iterator[tuple[int, int, int]]:
        """Yield (h, g, l_tile) triples in dispatch order."""

        if self is ThreadBlockOrdering.GQA_SHARED:
            for h in range(num_h):
                for lt in range(num_l_tiles):
                    for g in range(num_g):
                        yield h, g, lt
        elif self is ThreadBlockOrdering.SEQUENTIAL:
            for h in range(num_h):
                for g in range(num_g):
                    for lt in range(num_l_tiles):
                        yield h, g, lt
        else:  # pragma: no cover - enum is exhaustive
            raise AssertionError(f"unhandled ordering {self}")


def parse_ordering(ordering: "ThreadBlockOrdering | str") -> ThreadBlockOrdering:
    """Coerce an ordering value name (``"gqa-shared"``...) into the enum."""

    if isinstance(ordering, ThreadBlockOrdering):
        return ordering
    try:
        return ThreadBlockOrdering(ordering)
    except ValueError:
        names = sorted(o.value for o in ThreadBlockOrdering)
        raise ConfigError(
            f"unknown thread-block ordering {ordering!r} (choose from {names})"
        ) from None
