"""Set-associative cache storage with LRU replacement.

Used both for the shared L2 slices and for the private L1s.  The storage only
tracks presence and dirtiness of lines (no data values -- the simulator is a
timing model), so a set is an ordered dict from line address to a dirty flag,
ordered by recency.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ConfigError


@dataclass(frozen=True, slots=True)
class EvictedLine:
    """A line displaced by a fill."""

    line_addr: int
    dirty: bool


class CacheStorage:
    """Presence/dirtiness tracking for a set-associative cache."""

    __slots__ = (
        "num_sets",
        "associativity",
        "_index_fn",
        "_sets",
        "fills",
        "evictions",
        "dirty_evictions",
    )

    def __init__(
        self,
        num_sets: int,
        associativity: int,
        index_fn: Callable[[int], int],
    ) -> None:
        if num_sets <= 0 or associativity <= 0:
            raise ConfigError("num_sets and associativity must be positive")
        self.num_sets = num_sets
        self.associativity = associativity
        self._index_fn = index_fn
        self._sets: list[OrderedDict[int, bool]] = [OrderedDict() for _ in range(num_sets)]
        self.fills = 0
        self.evictions = 0
        self.dirty_evictions = 0

    # -- lookup -------------------------------------------------------------------------
    def _set_for(self, line_addr: int) -> OrderedDict[int, bool]:
        index = self._index_fn(line_addr)
        if not 0 <= index < self.num_sets:
            raise ConfigError(
                f"index function returned {index}, outside [0, {self.num_sets})"
            )
        return self._sets[index]

    def lookup(self, line_addr: int, update_lru: bool = True) -> bool:
        """True when ``line_addr`` is present; optionally refresh its recency."""

        cache_set = self._set_for(line_addr)
        if line_addr not in cache_set:
            return False
        if update_lru:
            cache_set.move_to_end(line_addr)
        return True

    def contains(self, line_addr: int) -> bool:
        return self.lookup(line_addr, update_lru=False)

    def is_dirty(self, line_addr: int) -> bool:
        cache_set = self._set_for(line_addr)
        return cache_set.get(line_addr, False)

    # -- mutation -------------------------------------------------------------------------
    def fill(self, line_addr: int, dirty: bool = False) -> EvictedLine | None:
        """Install a line (allocate-on-fill); return the victim if one was evicted."""

        cache_set = self._set_for(line_addr)
        victim: EvictedLine | None = None
        if line_addr in cache_set:
            # Refill of a present line: merge dirtiness, refresh recency.
            cache_set[line_addr] = cache_set[line_addr] or dirty
            cache_set.move_to_end(line_addr)
            return None
        if len(cache_set) >= self.associativity:
            victim_addr, victim_dirty = cache_set.popitem(last=False)
            victim = EvictedLine(victim_addr, victim_dirty)
            self.evictions += 1
            if victim_dirty:
                self.dirty_evictions += 1
        cache_set[line_addr] = dirty
        self.fills += 1
        return victim

    def mark_dirty(self, line_addr: int) -> bool:
        """Mark a present line dirty; returns False when the line is absent."""

        cache_set = self._set_for(line_addr)
        if line_addr not in cache_set:
            return False
        cache_set[line_addr] = True
        cache_set.move_to_end(line_addr)
        return True

    def invalidate(self, line_addr: int) -> bool:
        cache_set = self._set_for(line_addr)
        return cache_set.pop(line_addr, None) is not None

    # -- inspection -------------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.associativity

    def resident_lines(self) -> list[int]:
        lines: list[int] = []
        for s in self._sets:
            lines.extend(s.keys())
        return lines
