"""Shared sliced last-level cache: storage, MSHR, queues and the slice pipeline."""

from repro.llc.llc import SlicedLLC
from repro.llc.mshr import MshrEntry, MshrFile
from repro.llc.slice import LLCSlice
from repro.llc.storage import CacheStorage, EvictedLine

__all__ = [
    "CacheStorage",
    "EvictedLine",
    "LLCSlice",
    "MshrEntry",
    "MshrFile",
    "SlicedLLC",
]
