"""One LLC slice: the pipeline of Fig 4.

Per cycle the slice performs

* at most one *request lookup* (steps 1-2): the arbiter selects a request from
  the request queue, the tag array is probed and the request either completes
  as a hit or proceeds towards the MSHR;
* at most one *MSHR action* (step 3): a previously looked-up miss reserves an
  MSHR entry (merge or allocate).  A failed reservation stalls the whole
  request path -- even hits can no longer be processed -- until a resource
  frees, and every such cycle is counted as a cache-stall cycle (the t_cs
  signal of Table 3);
* at most one *response dequeue* (step 5): a fill from the response queue is
  written into the cache storage.  The request lookup and the response dequeue
  contend for the same storage port, resolved by the request-response
  arbitration policy of §3.3 (or by COBRRA's override).

DRAM returns (step 4/4') are pushed in by the simulator via
:meth:`LLCSlice.on_dram_fill`: the MSHR entry is freed, every merged requester
receives its data directly (it does not wait behind the response queue), and a
copy enters the response queue for the later storage fill.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.arbiter.base import BaseArbiter
from repro.common.address import AddressMap
from repro.common.fifo import BoundedFifo
from repro.common.types import MemRequest, MemResponse
from repro.config.system import L2Config, ReqRespArbitration
from repro.llc.mshr import MshrFile
from repro.llc.storage import CacheStorage

#: Maximum lookups in flight between tag probe and MSHR action; this bounds how
#: far the request path can run ahead of a stalled MSHR stage.
_PIPELINE_DEPTH_SLACK = 2

ResponseSink = Callable[[MemResponse, int, int], None]
DramSink = Callable[[int, bool, int], bool]


class LLCSlice:
    """One slice of the shared L2 (Fig 4)."""

    def __init__(
        self,
        slice_id: int,
        config: L2Config,
        address_map: AddressMap,
        arbiter: BaseArbiter,
        response_sink: ResponseSink,
        dram_sink: DramSink,
    ) -> None:
        config.validate()
        self.slice_id = slice_id
        self.config = config
        self.address_map = address_map
        self.arbiter = arbiter
        self.response_sink = response_sink
        self.dram_sink = dram_sink

        sets = config.sets_per_slice
        self.storage = CacheStorage(
            num_sets=sets,
            associativity=config.associativity,
            index_fn=address_map.set_index_fn(sets),
        )
        self.mshr = MshrFile(config.mshr_num_entries, config.mshr_num_targets)
        self.request_queue: BoundedFifo[MemRequest] = BoundedFifo(config.req_q_size)
        self.response_queue: BoundedFifo[tuple[int, bool]] = BoundedFifo(config.resp_q_size)

        self._mshr_stage: deque[tuple[int, MemRequest]] = deque()
        self._pending_fills: deque[tuple[int, bool]] = deque()
        self._dram_backlog: deque[tuple[int, bool]] = deque()   # (line_addr, is_write)
        self._mshr_pipeline_limit = (
            config.hit_latency + config.mshr_latency + _PIPELINE_DEPTH_SLACK
        )
        self.stalled = False

        # -- statistics ---------------------------------------------------------------
        self.hits = 0
        self.misses = 0
        self.mshr_merges = 0
        self.mshr_allocations = 0
        self.stall_cycles = 0
        self.requests_accepted = 0
        self.requests_rejected = 0
        self.dram_reads_issued = 0
        self.dram_writes_issued = 0
        self.fills_written = 0
        self.writebacks = 0
        self.busy_cycles = 0
        self.last_activity_cycle = 0

    # ------------------------------------------------------------------------------
    # external interfaces
    # ------------------------------------------------------------------------------
    def accept_request(self, req: MemRequest, cycle: int) -> bool:
        """NoC sink: push a request into the request queue (False when full)."""

        req.aligned(self.config.line_size)
        req.arrive_cycle = cycle
        if self.request_queue.push(req):
            self.requests_accepted += 1
            return True
        self.requests_rejected += 1
        return False

    def on_dram_fill(self, line_addr: int, cycle: int) -> None:
        """A DRAM read for ``line_addr`` returned (Fig 4, steps 4 and 4')."""

        entry = self.mshr.free(line_addr, cycle)
        dirty = False
        for target in entry.targets:
            if target.is_write:
                dirty = True
            self.response_sink(
                MemResponse(
                    req_id=target.req_id,
                    core_id=target.core_id,
                    tb_id=target.tb_id,
                    line_addr=line_addr,
                    rw=target.rw,
                    complete_cycle=cycle,
                    served_by="dram",
                ),
                cycle,
                0,
            )
        fill = (line_addr, dirty)
        if not self.response_queue.push(fill):
            self._pending_fills.append(fill)
        self.last_activity_cycle = cycle

    # ------------------------------------------------------------------------------
    # per-cycle pipeline
    # ------------------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        if not self._has_cycle_work():
            return
        self.busy_cycles += 1

        self._drain_dram_backlog(cycle)
        self._drain_pending_fills()

        # MSHR action stage runs independently of the storage port.
        self._mshr_action(cycle)

        serve_response = self._arbitrate_port()
        if serve_response:
            self._process_fill(cycle)
        elif not self.stalled:
            self._process_request(cycle)

    def _has_cycle_work(self) -> bool:
        return bool(
            self.request_queue
            or self.response_queue
            or self._mshr_stage
            or self._pending_fills
            or self._dram_backlog
            or self.stalled
        )

    # -- stage helpers ------------------------------------------------------------------
    def _arbitrate_port(self) -> bool:
        """Decide whether the storage port serves a response fill this cycle."""

        has_response = bool(self.response_queue)
        has_request = bool(self.request_queue) and not self.stalled
        if not has_response:
            return False
        override = self.arbiter.arbitrate_port(
            len(self.response_queue), self.response_queue.capacity, len(self.request_queue)
        )
        if override is not None:
            return override and has_response
        if self.config.req_resp_arbitration == ReqRespArbitration.RESPONSE_FIRST:
            return True
        # REQUEST_FIRST: responses only get the port when the response queue is
        # full or there is no request to serve.
        return self.response_queue.full or not has_request

    def _process_request(self, cycle: int) -> None:
        if not self.request_queue:
            return
        if len(self._mshr_stage) >= self._mshr_pipeline_limit:
            # The miss pipeline is backed up; lookups cannot proceed.
            return
        index = self.arbiter.select(
            self.request_queue, self.mshr.pending_lines(), cycle
        )
        req = self.request_queue.pop_index(index)
        self.arbiter.notify_selected(req, cycle)
        self.last_activity_cycle = cycle

        hit = self.storage.lookup(req.line_addr)
        if hit:
            self.hits += 1
            self.arbiter.notify_hit(req.line_addr, cycle)
            self.arbiter.notify_outcome(req, True, False)
            if req.is_write:
                self.storage.mark_dirty(req.line_addr)
            latency = self.config.hit_latency + self.config.data_latency
            self.response_sink(
                MemResponse(
                    req_id=req.req_id,
                    core_id=req.core_id,
                    tb_id=req.tb_id,
                    line_addr=req.line_addr,
                    rw=req.rw,
                    complete_cycle=cycle + latency,
                    served_by="l2",
                ),
                cycle,
                latency,
            )
        else:
            self.misses += 1
            due = cycle + self.config.hit_latency + self.config.mshr_latency
            self._mshr_stage.append((due, req))

    def _mshr_action(self, cycle: int) -> None:
        if not self._mshr_stage:
            if self.stalled:
                self.stalled = False
            return
        due, req = self._mshr_stage[0]
        if due > cycle and not self.stalled:
            return
        outcome = self.mshr.reserve(req, cycle)
        if outcome == "stall":
            self.stalled = True
            self.stall_cycles += 1
            return
        self._mshr_stage.popleft()
        self.stalled = False
        self.last_activity_cycle = cycle
        if outcome == "merged":
            self.mshr_merges += 1
            self.arbiter.notify_outcome(req, False, True)
        else:
            self.mshr_allocations += 1
            self.arbiter.notify_outcome(req, False, False)
            self._send_dram(req.line_addr, is_write=False, cycle=cycle)

    def _process_fill(self, cycle: int) -> None:
        if not self.response_queue:
            return
        line_addr, dirty = self.response_queue.pop()
        self.fills_written += 1
        self.last_activity_cycle = cycle
        victim = self.storage.fill(line_addr, dirty)
        self.arbiter.notify_fill(line_addr, cycle)
        if victim is not None and victim.dirty:
            self.writebacks += 1
            self._send_dram(victim.line_addr, is_write=True, cycle=cycle)

    # -- DRAM traffic helpers ---------------------------------------------------------------
    def _send_dram(self, line_addr: int, is_write: bool, cycle: int) -> None:
        if self._dram_backlog or not self.dram_sink(line_addr, is_write, self.slice_id):
            self._dram_backlog.append((line_addr, is_write))
        else:
            self._count_dram(is_write)

    def _drain_dram_backlog(self, cycle: int) -> None:
        while self._dram_backlog:
            line_addr, is_write = self._dram_backlog[0]
            if not self.dram_sink(line_addr, is_write, self.slice_id):
                break
            self._dram_backlog.popleft()
            self._count_dram(is_write)

    def _count_dram(self, is_write: bool) -> None:
        if is_write:
            self.dram_writes_issued += 1
        else:
            self.dram_reads_issued += 1

    def _drain_pending_fills(self) -> None:
        while self._pending_fills and not self.response_queue.full:
            self.response_queue.push(self._pending_fills.popleft())

    # ------------------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------------------
    @property
    def total_requests(self) -> int:
        return self.hits + self.misses

    @property
    def outstanding_work(self) -> bool:
        """True while any request is somewhere inside the slice or its MSHR."""

        return bool(
            self.request_queue
            or self.response_queue
            or self._mshr_stage
            or self._pending_fills
            or self._dram_backlog
            or self.mshr.occupancy
            or self.stalled
        )

    def hit_rate(self) -> float:
        total = self.total_requests
        return self.hits / total if total else 0.0

    def mshr_hit_rate(self) -> float:
        """Requests merged into an existing entry, per cache miss (§6.3.3)."""

        resolved_misses = self.mshr_merges + self.mshr_allocations
        return self.mshr_merges / resolved_misses if resolved_misses else 0.0
