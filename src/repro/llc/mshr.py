"""Miss Status Holding Registers.

The MSHR file has two dimensions (§2.4): ``num_entries`` distinct outstanding
misses and ``num_targets`` requests mergeable into one entry.  The cache
pipeline stalls when a reservation fails in either dimension.  Entry occupancy
is integrated over time because the paper reports "MSHR entry util" (average
numEntry occupancy) as a first-order performance indicator (Fig 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SimulationError
from repro.common.types import MemRequest


@dataclass(slots=True)
class MshrEntry:
    """One outstanding miss and the requests merged into it."""

    line_addr: int
    allocated_cycle: int
    targets: list[MemRequest] = field(default_factory=list)
    dispatched_to_dram: bool = False

    @property
    def num_targets(self) -> int:
        return len(self.targets)


class MshrFile:
    """MSHR file of one LLC slice."""

    __slots__ = (
        "num_entries",
        "num_targets",
        "_entries",
        "allocations",
        "merges",
        "merge_failures_full_targets",
        "alloc_failures_full_entries",
        "_occupancy_integral",
        "_last_change_cycle",
        "peak_occupancy",
    )

    def __init__(self, num_entries: int, num_targets: int) -> None:
        if num_entries <= 0 or num_targets <= 0:
            raise SimulationError("MSHR dimensions must be positive")
        self.num_entries = num_entries
        self.num_targets = num_targets
        self._entries: dict[int, MshrEntry] = {}
        self.allocations = 0
        self.merges = 0
        self.merge_failures_full_targets = 0
        self.alloc_failures_full_entries = 0
        self._occupancy_integral = 0.0
        self._last_change_cycle = 0
        self.peak_occupancy = 0

    # -- occupancy accounting ----------------------------------------------------------
    def _account(self, cycle: int) -> None:
        if cycle < self._last_change_cycle:
            raise SimulationError(
                f"MSHR time went backwards: {cycle} < {self._last_change_cycle}"
            )
        self._occupancy_integral += len(self._entries) * (cycle - self._last_change_cycle)
        self._last_change_cycle = cycle

    def average_occupancy(self, final_cycle: int) -> float:
        """Mean number of occupied entries over [0, final_cycle]."""

        if final_cycle <= 0:
            return 0.0
        integral = self._occupancy_integral + len(self._entries) * (
            final_cycle - self._last_change_cycle
        )
        return integral / final_cycle

    def utilization(self, final_cycle: int) -> float:
        """Average occupancy normalised to the number of entries (0..1)."""

        return self.average_occupancy(final_cycle) / self.num_entries

    # -- lookup / reservation -------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def has_free_entry(self) -> bool:
        return len(self._entries) < self.num_entries

    def lookup(self, line_addr: int) -> MshrEntry | None:
        return self._entries.get(line_addr)

    def can_merge(self, line_addr: int) -> bool:
        entry = self._entries.get(line_addr)
        return entry is not None and entry.num_targets < self.num_targets

    def pending_lines(self) -> set[int]:
        """The MSHR_snapshot of §4.3: the set of line addresses currently pending."""

        return set(self._entries.keys())

    def reserve(self, req: MemRequest, cycle: int) -> str:
        """Attempt a reservation for ``req``; returns the outcome.

        Returns one of:

        * ``"merged"``    -- an entry for the line existed and had a free target slot;
        * ``"allocated"`` -- a new entry was opened (a DRAM fetch must be issued);
        * ``"stall"``     -- no resources (either target slots or entries exhausted).
        """

        entry = self._entries.get(req.line_addr)
        if entry is not None:
            if entry.num_targets < self.num_targets:
                entry.targets.append(req)
                self.merges += 1
                return "merged"
            self.merge_failures_full_targets += 1
            return "stall"
        if len(self._entries) >= self.num_entries:
            self.alloc_failures_full_entries += 1
            return "stall"
        self._account(cycle)
        self._entries[req.line_addr] = MshrEntry(
            line_addr=req.line_addr, allocated_cycle=cycle, targets=[req]
        )
        self.allocations += 1
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)
        return "allocated"

    def free(self, line_addr: int, cycle: int) -> MshrEntry:
        """Release the entry for ``line_addr`` (on DRAM fill) and return it."""

        if line_addr not in self._entries:
            raise SimulationError(f"freeing MSHR entry for absent line {line_addr:#x}")
        self._account(cycle)
        return self._entries.pop(line_addr)
