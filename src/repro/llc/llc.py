"""The sliced LLC: builds the per-slice pipelines and aggregates their statistics."""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.arbiter.base import BaseArbiter
from repro.arbiter.factory import make_arbiter
from repro.common.address import AddressMap
from repro.common.mathutils import safe_div
from repro.config.policies import PolicyConfig
from repro.config.system import L2Config
from repro.llc.slice import DramSink, LLCSlice, ResponseSink


@dataclass(frozen=True, slots=True)
class LLCStats:
    """Aggregate statistics over all slices."""

    hits: int
    misses: int
    mshr_merges: int
    mshr_allocations: int
    stall_cycles: int
    mshr_entry_utilization: float
    requests_accepted: int
    dram_reads: int
    dram_writes: int
    writebacks: int
    peak_mshr_occupancy: int

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return safe_div(self.hits, self.accesses)

    @property
    def mshr_hit_rate(self) -> float:
        return safe_div(self.mshr_merges, self.mshr_merges + self.mshr_allocations)

    # -- serialization (sweep result store) --------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready mapping of the raw counters; round-trips via :meth:`from_dict`."""

        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "LLCStats":
        return cls(**{f.name: data[f.name] for f in fields(cls)})


class SlicedLLC:
    """All LLC slices of the system, each with its own arbiter instance."""

    def __init__(
        self,
        config: L2Config,
        policy: PolicyConfig,
        num_cores: int,
        response_sink: ResponseSink,
        dram_sink: DramSink,
    ) -> None:
        config.validate()
        policy.validate()
        self.config = config
        self.policy = policy
        self.address_map = AddressMap(line_size=config.line_size, num_slices=config.num_slices)
        self.slices: list[LLCSlice] = []
        self.arbiters: list[BaseArbiter] = []
        for slice_id in range(config.num_slices):
            arbiter = make_arbiter(policy, config, num_cores)
            self.arbiters.append(arbiter)
            self.slices.append(
                LLCSlice(
                    slice_id=slice_id,
                    config=config,
                    address_map=self.address_map,
                    arbiter=arbiter,
                    response_sink=response_sink,
                    dram_sink=dram_sink,
                )
            )
        self.num_cores = num_cores

    # -- routing -----------------------------------------------------------------------
    def slice_of(self, addr: int) -> int:
        return self.address_map.slice_of(addr)

    def slice_sinks(self):
        """Per-slice request sinks handed to the interconnect."""

        return [s.accept_request for s in self.slices]

    def on_dram_fill(self, slice_id: int, line_addr: int, cycle: int) -> None:
        self.slices[slice_id].on_dram_fill(line_addr, cycle)

    # -- per-cycle ---------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        for llc_slice in self.slices:
            llc_slice.tick(cycle)

    # -- throttling-controller interfaces -----------------------------------------------
    def stall_cycles_total(self) -> int:
        return sum(s.stall_cycles for s in self.slices)

    def progress_by_core(self) -> list[int]:
        """Per-core served-request counts summed over all slice arbiters."""

        totals = [0] * self.num_cores
        for arbiter in self.arbiters:
            for core_id, count in enumerate(arbiter.progress_counters):
                totals[core_id] += count
        return totals

    def reset_progress(self) -> None:
        for arbiter in self.arbiters:
            arbiter.reset_progress()

    # -- aggregation ---------------------------------------------------------------------
    def outstanding_work(self) -> bool:
        return any(s.outstanding_work for s in self.slices)

    def stats(self, final_cycle: int) -> LLCStats:
        mshr_util = safe_div(
            sum(s.mshr.utilization(final_cycle) for s in self.slices), len(self.slices)
        )
        return LLCStats(
            hits=sum(s.hits for s in self.slices),
            misses=sum(s.misses for s in self.slices),
            mshr_merges=sum(s.mshr_merges for s in self.slices),
            mshr_allocations=sum(s.mshr_allocations for s in self.slices),
            stall_cycles=sum(s.stall_cycles for s in self.slices),
            mshr_entry_utilization=mshr_util,
            requests_accepted=sum(s.requests_accepted for s in self.slices),
            dram_reads=sum(s.dram_reads_issued for s in self.slices),
            dram_writes=sum(s.dram_writes_issued for s in self.slices),
            writebacks=sum(s.writebacks for s in self.slices),
            peak_mshr_occupancy=max(s.mshr.peak_occupancy for s in self.slices),
        )
