"""Liveness smoke check for the cycle engine (the kernel-sim counterpart of
:mod:`repro.analysis.runtime`).

:func:`check_liveness` drives the previously-livelocked cobrra drain point
(llama3-70b, L=128 / L2=0.5MiB at ci tier -- the exact configuration from the
PR 9 bug report) through the full ``Scenario`` path twice and verifies (1) it
terminates with ``completed`` status well under the cycle guard and (2) the
two runs serialize byte-identically (the determinism contract, extended to
kernel simulations).

:class:`StarvationInjectedArbiter` is the matching fault injector -- it
reinstates the pre-fix COBRRA behaviour (request priority whenever response
occupancy sits below the threshold, even with an empty request queue) so tests
and the CI smoke can prove the engine's liveness watchdog actually fires: the
injected run must end with ``livelock`` status, a structured stall report and
a nonzero ``llamcat check`` exit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.api import Scenario
from repro.arbiter.cobrra import CobrraArbiter
from repro.config.scale import ScaleTier
from repro.sim.engine import DEFAULT_MAX_CYCLES, SimulationEngine
from repro.sim.liveness import DEFAULT_PATIENCE_CYCLES, LivenessConfig, TerminationStatus
from repro.sim.runner import cached_trace, clear_trace_cache
from repro.sim.system import SimulatedSystem

__all__ = [
    "LivenessReport",
    "StarvationInjectedArbiter",
    "check_liveness",
    "livelock_scenario",
]


class StarvationInjectedArbiter(CobrraArbiter):
    """Fault injector: the pre-PR-9 COBRRA arbitration, starvation included.

    Forces request priority whenever response-queue occupancy sits below the
    threshold -- also when the request queue is empty -- which livelocks the
    uncore drain once every thread block has completed.  Used to prove the
    liveness watchdog catches exactly this regression class.
    """

    name = "cobrra-starved"

    def wants_response_priority(
        self, resp_queue_len: int, resp_queue_capacity: int, req_queue_len: int
    ) -> bool | None:
        if resp_queue_len == 0:
            return False
        occupancy = resp_queue_len / resp_queue_capacity if resp_queue_capacity else 0.0
        if occupancy < self.params.resp_priority_threshold:
            return False
        self._serve_response_next = not self._serve_response_next
        return self._serve_response_next


def livelock_scenario(
    policy: str = "cobrra", tier: ScaleTier = ScaleTier.CI
) -> Scenario:
    """The configuration that livelocked before the PR 9 drain fix.

    At ci tier the requested ``seq_len=4096`` scales to L=128 and the table5
    L2 to 0.5 MiB -- small enough that responses are still in flight when the
    request stream dries up.
    """

    return Scenario.create("llama3-70b", policy, seq_len=4096, tier=tier)


def _result_digest(result) -> str:
    payload = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True, slots=True)
class LivenessReport:
    """Verdict of one liveness smoke run."""

    label: str
    status: str
    cycles: int
    injected: bool
    digest_first: str | None
    digest_second: str | None
    #: Rendered stall report; set only when the run did not complete.
    stall: str | None

    @property
    def identical(self) -> bool:
        return (
            self.digest_first is not None and self.digest_first == self.digest_second
        )

    @property
    def ok(self) -> bool:
        return self.status == TerminationStatus.COMPLETED.value and self.identical

    def render(self) -> str:
        if self.ok:
            return (
                f"liveness check [{self.label}]: OK -- completed in "
                f"{self.cycles} cycles, digests identical"
            )
        if self.status == TerminationStatus.COMPLETED.value:
            return (
                f"liveness check [{self.label}]: DIVERGED -- "
                f"run 1 {self.digest_first[:16] if self.digest_first else '?'} "
                f"vs run 2 {self.digest_second[:16] if self.digest_second else '?'}"
            )
        lines = [
            f"liveness check [{self.label}]: LIVELOCK"
            if self.status == TerminationStatus.LIVELOCK.value
            else f"liveness check [{self.label}]: {self.status.upper()}"
        ]
        if self.stall:
            lines.append(self.stall)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "status": self.status,
            "cycles": self.cycles,
            "injected": self.injected,
            "ok": self.ok,
            "digests": [self.digest_first, self.digest_second],
            "stall": self.stall,
        }


def _run_injected(scenario: Scenario, patience: int) -> LivenessReport:
    """Run the scenario with the starvation injector swapped into every slice."""

    system_cfg, workload, policy = scenario.resolve()
    try:
        trace = cached_trace(
            workload, system_cfg, scenario.ordering, scenario.constraints
        )
        system = SimulatedSystem(system_cfg, policy, trace)
        for index, llc_slice in enumerate(system.llc.slices):
            starved = StarvationInjectedArbiter(
                system_cfg.core.num_cores, policy.cobrra
            )
            system.llc.arbiters[index] = starved
            llc_slice.arbiter = starved
        engine = SimulationEngine(
            system,
            max_cycles=scenario.max_cycles or DEFAULT_MAX_CYCLES,
            liveness=LivenessConfig(patience=patience),
        )
        report = engine.run(raise_on_stall=False)
    finally:
        clear_trace_cache()
    return LivenessReport(
        label=f"{scenario.display_label}+starvation-injected",
        status=report.status.value,
        cycles=report.cycles,
        injected=True,
        digest_first=None,
        digest_second=None,
        stall=None if report.stall_report is None else report.stall_report.render(),
    )


def check_liveness(
    scenario: Scenario | None = None,
    inject_starvation: bool = False,
    patience: int = DEFAULT_PATIENCE_CYCLES,
) -> LivenessReport:
    """Run the liveness smoke; see the module docstring for the contract.

    The clean mode runs ``scenario`` twice through the public path and demands
    ``completed`` status plus byte-identical serialized results; the injected
    mode proves the watchdog converts the starvation regression into a
    ``livelock`` verdict with a stall report instead of a 20M-cycle burn.
    """

    scenario = scenario if scenario is not None else livelock_scenario()
    if inject_starvation:
        return _run_injected(scenario, patience)
    first = scenario.run()
    second = scenario.run()
    return LivenessReport(
        label=scenario.display_label,
        status=first.status,
        cycles=first.cycles,
        injected=False,
        digest_first=_result_digest(first),
        digest_second=_result_digest(second),
        stall=None,
    )
