"""Runtime divergence localization for the serving simulators.

Static rules catch nondeterminism *patterns*; this module catches
nondeterminism *behavior*.  A :class:`StepProbe` -- installed through the same
zero-overhead hook style as the tracer (``probe is None`` by default, one
branch per step when off) -- records a :class:`StepDigest` for every costed
scheduler iteration: the waiting queue, the running batch's exact progress,
the step plan, its cycle cost and the arrival sampler's RNG stream position,
all folded into a sha256 over a canonical JSON payload.

:func:`check_determinism` runs a scenario twice and
:func:`localize_divergence` bisects the two digest sequences to the first
step where they disagree, turning "the hashes differ" into "step 17 on
replica 2: the waiting queue changed".  :class:`RngJitterArrival` is the
matching fault injector -- a deliberately *unseeded* arrival-jitter wrapper
used by tests and CI to prove the localizer actually localizes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

from repro.serve.arrival import ArrivalProcess
from repro.serve.request import Request
from repro.sim.runner import clear_trace_cache

__all__ = [
    "DeterminismReport",
    "RngJitterArrival",
    "StepDigest",
    "StepProbe",
    "check_determinism",
    "collect_digests",
    "localize_divergence",
]


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _rng_token(arrival: ArrivalProcess | None) -> dict | None:
    """The arrival sampler's RNG stream position, as JSON-able state.

    Open-loop processes draw their whole stream up front, so their position is
    frozen for the run; closed-loop processes keep sampling as requests
    complete, which is exactly when a stray draw elsewhere would shift the
    stream.  Arrival processes without a sampler (e.g. pre-materialized
    traces) digest as ``None``.
    """

    if arrival is None:
        return None
    sampler = getattr(arrival, "_sampler", None) or getattr(arrival, "sampler", None)
    rng = getattr(sampler, "_rng", None)
    if rng is None:
        return None
    state = rng.bit_generator.state
    return {
        "bit_generator": state.get("bit_generator"),
        "state": {k: int(v) for k, v in state.get("state", {}).items()},
    }


@dataclass(frozen=True, slots=True)
class StepDigest:
    """One costed scheduler iteration, reduced to a comparable fingerprint.

    ``payload`` is the canonical JSON the digest hashes -- kept alongside so a
    localized divergence can say *which* state component changed, not just
    that the hashes differ.
    """

    replica_id: int
    step: int
    start_s: float
    digest: str
    payload: str

    def state(self) -> dict:
        return json.loads(self.payload)

    def changed_keys(self, other: "StepDigest") -> tuple[str, ...]:
        """The top-level state components on which two digests disagree."""

        mine, theirs = self.state(), other.state()
        return tuple(
            sorted(
                key
                for key in set(mine) | set(theirs)
                if mine.get(key) != theirs.get(key)
            )
        )

    def to_dict(self) -> dict:
        return {
            "replica_id": self.replica_id,
            "step": self.step,
            "start_s": self.start_s,
            "digest": self.digest,
        }


class StepProbe:
    """Records per-step state digests; the simulators' third observability sink.

    Like the tracer and telemetry recorder, the hook is zero-overhead when
    unused: the simulators keep ``probe=None`` defaults and guard the single
    call site with ``probe is not None``.  The ``arrival`` attribute is
    installed by the simulator at run start so digests can include the RNG
    stream position without threading it through every call.
    """

    def __init__(self) -> None:
        self.digests: list[StepDigest] = []
        self.arrival: ArrivalProcess | None = None

    def record_step(
        self,
        *,
        replica_id: int,
        step: int,
        start_s: float,
        scheduler: Any,
        plan: Any,
        cycles: int,
    ) -> None:
        state = {
            "replica": replica_id,
            "start_s": start_s,
            "waiting": [
                [r.request_id, r.arrival_s] for r in scheduler.waiting
            ],
            "running": [
                [
                    a.request.request_id,
                    a.generated,
                    a.prefill_remaining,
                ]
                for a in scheduler.running
            ],
            "decode": [a.request.request_id for a in plan.decode],
            "prefill": [[a.request.request_id, chunk] for a, chunk in plan.prefill],
            "cycles": cycles,
            "rng": _rng_token(self.arrival),
        }
        payload = _canonical(state)
        self.digests.append(
            StepDigest(
                replica_id=replica_id,
                step=step,
                start_s=start_s,
                digest=hashlib.sha256(payload.encode()).hexdigest(),
                payload=payload,
            )
        )


class RngJitterArrival(ArrivalProcess):
    """Fault injector: perturb arrivals with a deliberately unseeded RNG.

    Wraps a real arrival process and adds sub-millisecond jitter to the
    arrival time of every request with ``request_id >= after_id`` -- exactly
    the bug class DET001 exists to prevent, reproduced on purpose so tests and
    the CI smoke can prove ``check_determinism`` localizes it (the first
    digest that sees a jittered request diverges; everything before it
    matches).
    """

    name = "rng-jitter"

    def __init__(
        self,
        inner: ArrivalProcess,
        after_id: int = 4,
        scale_s: float = 1e-4,
    ) -> None:
        import random  # repro: noqa[DET001] -- deliberate nondeterminism injector

        self.inner = inner
        self.after_id = after_id
        self.scale_s = scale_s
        self._rng = random.Random()  # unseeded: different every process/run

    def _perturb(self, request: Request | None) -> Request | None:
        if request is None or request.request_id < self.after_id:
            return request
        return replace(
            request, arrival_s=request.arrival_s + self._rng.random() * self.scale_s
        )

    def initial(self) -> tuple[Request, ...]:
        return tuple(self._perturb(r) for r in self.inner.initial())

    def on_complete(self, request: Request, now_s: float) -> Request | None:
        return self._perturb(self.inner.on_complete(request, now_s))


@dataclass(frozen=True, slots=True)
class DeterminismReport:
    """The verdict of running one scenario twice and comparing step digests."""

    label: str
    steps_first: int
    steps_second: int
    #: Index (into the digest sequences) of the first disagreement; None when
    #: the runs are step-for-step identical.
    divergent_step: int | None
    first: StepDigest | None
    second: StepDigest | None
    #: The state components that differ at the divergent step.
    changed: tuple[str, ...]

    @property
    def deterministic(self) -> bool:
        return self.divergent_step is None and self.steps_first == self.steps_second

    def render(self) -> str:
        if self.deterministic:
            return (
                f"determinism check [{self.label}]: OK -- "
                f"{self.steps_first} steps, digests identical"
            )
        lines = [f"determinism check [{self.label}]: DIVERGED"]
        if self.divergent_step is not None and self.first is not None:
            what = ", ".join(self.changed) if self.changed else "state"
            lines.append(
                f"  first divergent step: #{self.divergent_step} "
                f"(replica {self.first.replica_id}, step {self.first.step} "
                f"at t={self.first.start_s:.6f}s)"
            )
            lines.append(f"  changed: {what}")
            lines.append(f"  run 1 digest: {self.first.digest[:16]}")
            if self.second is not None:
                lines.append(f"  run 2 digest: {self.second.digest[:16]}")
        if self.steps_first != self.steps_second:
            lines.append(
                f"  step counts differ: {self.steps_first} vs {self.steps_second}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "deterministic": self.deterministic,
            "steps": [self.steps_first, self.steps_second],
            "divergent_step": self.divergent_step,
            "changed": list(self.changed),
            "first": None if self.first is None else self.first.to_dict(),
            "second": None if self.second is None else self.second.to_dict(),
        }


def collect_digests(
    scenario: Any,
    wrap_arrival: Callable[[ArrivalProcess], ArrivalProcess] | None = None,
) -> tuple[StepDigest, ...]:
    """Run ``scenario`` once with a probe installed and return its digests.

    ``scenario`` is anything with ``build_simulator()`` (serve or cluster);
    ``wrap_arrival`` optionally replaces the simulator's arrival process --
    the seam :class:`RngJitterArrival` injects through.  Mirrors
    ``scenario.run()`` in clearing the module-level trace cache afterwards.
    """

    simulator = scenario.build_simulator()
    if wrap_arrival is not None:
        simulator.arrival = wrap_arrival(simulator.arrival)
    probe = StepProbe()
    try:
        simulator.run(probe=probe)
    finally:
        clear_trace_cache()
    return tuple(probe.digests)


def localize_divergence(
    first: Sequence[StepDigest],
    second: Sequence[StepDigest],
    label: str = "scenario",
) -> DeterminismReport:
    """Find the first step at which two digest sequences disagree."""

    for index, (a, b) in enumerate(zip(first, second, strict=False)):
        if a.digest != b.digest:
            return DeterminismReport(
                label=label,
                steps_first=len(first),
                steps_second=len(second),
                divergent_step=index,
                first=a,
                second=b,
                changed=a.changed_keys(b),
            )
    if len(first) != len(second):
        # One run kept stepping after the other stopped: the divergence is the
        # first unmatched step.
        index = min(len(first), len(second))
        longer = first if len(first) > len(second) else second
        return DeterminismReport(
            label=label,
            steps_first=len(first),
            steps_second=len(second),
            divergent_step=index,
            first=longer[index],
            second=None,
            changed=("steps",),
        )
    return DeterminismReport(
        label=label,
        steps_first=len(first),
        steps_second=len(second),
        divergent_step=None,
        first=None,
        second=None,
        changed=(),
    )


def check_determinism(
    scenario: Any,
    label: str | None = None,
    wrap_arrival: Callable[[ArrivalProcess], ArrivalProcess] | None = None,
) -> DeterminismReport:
    """Run ``scenario`` twice and localize the first divergent step, if any.

    A clean scenario reports zero divergent steps (both runs produce the same
    digest sequence); a scenario with injected nondeterminism -- or a real
    determinism bug -- is pinned to the exact step, replica and state
    component where the two executions first disagree.
    """

    name = label if label is not None else getattr(scenario, "display_label", "scenario")
    first = collect_digests(scenario, wrap_arrival=wrap_arrival)
    second = collect_digests(scenario, wrap_arrival=wrap_arrival)
    return localize_divergence(first, second, label=name)
