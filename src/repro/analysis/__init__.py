"""Static analysis and runtime invariant checking for the reproduction.

Every guarantee this repo makes -- byte-identical golden fixtures,
content-hash sweep keys, CI double-run ``cmp`` checks, traced == untraced
metric equality -- rests on strict determinism.  ``repro.analysis`` turns the
rules that keep those guarantees true from review-time tribal knowledge into
machine-checked invariants:

* :mod:`repro.analysis.engine` -- a small AST lint framework (stdlib ``ast``
  only): a rule registry reusing the :mod:`repro.registry` decorator pattern,
  per-rule codes, ``# repro: noqa[CODE]`` suppressions with unused-suppression
  detection, and text / JSON reporting for ``llamcat check``.
* :mod:`repro.analysis.rules` -- the repo-specific rules (DET/REG/SER/API/CLI
  codes): unseeded RNGs, wall-clock reads in deterministic modules, unordered
  iteration feeding serialized output, registry registrations invisible to the
  lazy bootstrap, ``to_dict``/``from_dict`` asymmetry, frozen-dataclass
  mutation outside ``__post_init__``, stray stdout prints.
* :mod:`repro.analysis.runtime` -- the divergence localizer: per-step state
  digests (queue contents, batch composition, RNG stream position) recorded
  through a zero-overhead probe hook on the serve/cluster simulators, plus
  ``check_determinism`` which runs a scenario twice and bisects to the first
  divergent step (``llamcat check --determinism``).
* :mod:`repro.analysis.liveness` -- the kernel-sim liveness smoke: runs the
  previously-livelocked cobrra drain point twice, demanding ``completed``
  status and byte-identical results, and a starvation fault injector proving
  the engine watchdog turns the regression into a structured stall report
  (``llamcat check --determinism liveness-smoke``).

Quick start::

    from repro.analysis import check_paths, explain_rule

    findings = check_paths(["src", "tests", "examples"])
    for finding in findings:
        print(finding.render())
"""

from repro.analysis.engine import (
    NOQA_PATTERN,
    RULES,
    Finding,
    LintRule,
    ParsedModule,
    ProjectRule,
    all_rules,
    check_paths,
    check_source,
    discover_files,
    explain_rule,
    findings_to_json,
    parse_module,
    register_rule,
    rule_codes,
)
from repro.analysis.liveness import (
    LivenessReport,
    StarvationInjectedArbiter,
    check_liveness,
    livelock_scenario,
)
from repro.analysis.runtime import (
    DeterminismReport,
    RngJitterArrival,
    StepDigest,
    StepProbe,
    check_determinism,
    collect_digests,
    localize_divergence,
)

__all__ = [
    "DeterminismReport",
    "Finding",
    "LintRule",
    "LivenessReport",
    "NOQA_PATTERN",
    "ParsedModule",
    "ProjectRule",
    "RULES",
    "RngJitterArrival",
    "StarvationInjectedArbiter",
    "StepDigest",
    "StepProbe",
    "all_rules",
    "check_determinism",
    "check_liveness",
    "check_paths",
    "check_source",
    "collect_digests",
    "discover_files",
    "explain_rule",
    "findings_to_json",
    "livelock_scenario",
    "localize_divergence",
    "parse_module",
    "register_rule",
    "rule_codes",
]
