"""The repo-specific lint rules: determinism and API invariants as code.

Each rule encodes one invariant the reproduction's guarantees rest on; the
``rationale`` strings double as the ``llamcat check --explain`` docs.  Codes
are grouped by family:

* ``DET``: determinism (seeded RNG discipline, no wall clock in simulated
  time, no unordered iteration feeding serialized output)
* ``REG``: registry wiring (registrations must be reachable from the lazy
  bootstrap, or ``llamcat list`` and name resolution silently miss them)
* ``SER``: serialization round-trips (``to_dict`` keys must be read back)
* ``API``: frozen-dataclass discipline
* ``CLI``: stdout purity (byte-comparison CI)
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.engine import (
    Finding,
    LintRule,
    ParsedModule,
    ProjectRule,
    register_rule,
)

#: Wall-clock functions of the :mod:`time` module.
_TIME_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: Wall-clock constructors of :class:`datetime.datetime` / ``date``.
_DATETIME_FUNCTIONS = frozenset({"now", "utcnow", "today"})

#: Legacy global-state ``numpy.random`` entry points.
_NUMPY_GLOBAL_RNG = frozenset(
    {"seed", "random", "rand", "randn", "randint", "shuffle", "choice", "permutation"}
)


def _parts(path: str) -> tuple[str, ...]:
    return Path(path).parts


def _in_library(path: str) -> bool:
    """Whether ``path`` is library code (a module under the ``repro`` package)."""

    return "repro" in _parts(path)


def _is_set_expression(node: ast.expr, known_sets: set[str]) -> bool:
    """Whether ``node`` syntactically evaluates to a set/frozenset."""

    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.Name) and node.id in known_sets:
        return True
    return False


@register_rule("DET001")
class StrayRandomRule(LintRule):
    """stdlib/global RNG outside repro.common.rng"""

    code = "DET001"
    summary = "stdlib/global RNG outside repro.common.rng"
    rationale = (
        "All randomness must flow through repro.common.rng.make_rng /\n"
        "derive_seed so one seed reproduces a run bit-for-bit.  The stdlib\n"
        "'random' module (and numpy's legacy global generator) carries hidden\n"
        "process-global state: unseeded it breaks reproducibility outright,\n"
        "and even seeded it aliases streams across components, so a new call\n"
        "site silently perturbs every later draw.  Content-hash sweep keys,\n"
        "golden fixtures and CI double-run byte comparisons all assume this\n"
        "never happens."
    )

    def applies(self, path: str) -> bool:
        return not path.endswith("repro/common/rng.py")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            module,
                            node,
                            "stdlib 'random' bypasses the seeded-RNG discipline; "
                            "use repro.common.rng.make_rng(seed)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        module,
                        node,
                        "stdlib 'random' bypasses the seeded-RNG discipline; "
                        "use repro.common.rng.make_rng(seed)",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)

    def _check_call(self, module: ParsedModule, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        # numpy.random.<legacy global fn>(...) -- hidden process-global state.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _NUMPY_GLOBAL_RNG
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in ("np", "numpy")
        ):
            yield self.finding(
                module,
                node,
                f"numpy's global RNG (np.random.{func.attr}) is process-wide "
                "state; use repro.common.rng.make_rng(seed)",
            )
        # default_rng(...) anywhere else -- bypasses the DEFAULT_SEED policy.
        if (
            isinstance(func, ast.Attribute) and func.attr == "default_rng"
        ) or (isinstance(func, ast.Name) and func.id == "default_rng"):
            yield self.finding(
                module,
                node,
                "construct generators through repro.common.rng.make_rng(seed), "
                "not np.random.default_rng directly",
            )


@register_rule("DET002")
class WallClockRule(LintRule):
    """wall-clock reads in deterministic modules"""

    code = "DET002"
    summary = "wall-clock reads in deterministic modules"
    rationale = (
        "Simulated time is the only clock deterministic code may read.  A\n"
        "wall-clock call (time.time, time.perf_counter, datetime.now, ...)\n"
        "that leaks into metrics, traces or stored results makes seeded runs\n"
        "differ byte-for-byte and breaks the CI double-run 'cmp' checks.\n"
        "Wall-clock profiling belongs in repro.obs.profile (or benchmarks/),\n"
        "which are allowlisted; elsewhere a deliberate, output-invisible use\n"
        "needs an explicit '# repro: noqa[DET002]' with a justification."
    )

    def applies(self, path: str) -> bool:
        parts = _parts(path)
        if "benchmarks" in parts:
            return False
        return not path.endswith("repro/obs/profile.py")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        time_aliases = {"time"}
        datetime_classes = set()
        from_imported: dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_FUNCTIONS:
                            from_imported[alias.asname or alias.name] = alias.name
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_classes.add(alias.asname or alias.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in from_imported:
                yield self._flag(module, node, f"time.{from_imported[func.id]}")
            elif isinstance(func, ast.Attribute):
                base = func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in time_aliases
                    and func.attr in _TIME_FUNCTIONS
                ):
                    yield self._flag(module, node, f"time.{func.attr}")
                elif func.attr in _DATETIME_FUNCTIONS and (
                    (isinstance(base, ast.Name) and base.id in datetime_classes)
                    or (
                        isinstance(base, ast.Attribute)
                        and base.attr in ("datetime", "date")
                        and isinstance(base.value, ast.Name)
                        and base.value.id == "datetime"
                    )
                ):
                    yield self._flag(module, node, f"datetime.{func.attr}")

    def _flag(self, module: ParsedModule, node: ast.Call, what: str) -> Finding:
        return self.finding(
            module,
            node,
            f"{what}() reads the wall clock; deterministic code must use "
            "simulated time (profiling belongs in repro.obs.profile)",
        )


class _SetScopeVisitor(ast.NodeVisitor):
    """Shared scope walker: tracks which locals are known sets, per function."""

    def __init__(self, rule: "UnorderedIterationRule | UnorderedSumRule",
                 module: ParsedModule) -> None:
        self.rule = rule
        self.module = module
        self.findings: list[Finding] = []
        self.known_sets: set[str] = set()

    def _enter_scope(self, node: ast.AST) -> None:
        outer, self.known_sets = self.known_sets, set()
        self.generic_visit(node)
        self.known_sets = outer

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if _is_set_expression(node.value, self.known_sets):
                self.known_sets.add(name)
            else:
                self.known_sets.discard(name)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            if _is_set_expression(node.value, self.known_sets):
                self.known_sets.add(node.target.id)
            else:
                self.known_sets.discard(node.target.id)
        self.generic_visit(node)


@register_rule("DET003")
class UnorderedIterationRule(LintRule):
    """iteration over an unordered set"""

    code = "DET003"
    summary = "iteration over an unordered set"
    rationale = (
        "Iterating a set observes hash order, which varies with insertion\n"
        "history and interpreter salt -- unordered provenance.  When such an\n"
        "iteration feeds serialized output (metrics dicts, JSONL stores,\n"
        "traces) the bytes differ across runs and every content-hash and\n"
        "golden-fixture guarantee breaks.  Sort the elements (sorted(...)) or\n"
        "keep an ordered container (dicts preserve insertion order).\n"
        "Set-to-set comprehensions are exempt: their result is unordered\n"
        "anyway, so no order is observed."
    )

    #: Builtins that materialize their argument's iteration order.
    _ORDER_OBSERVING_CALLS = ("list", "tuple", "enumerate")

    def check(self, module: ParsedModule) -> list[Finding]:
        visitor = _IterationVisitor(self, module)
        visitor.visit(module.tree)
        return visitor.findings

    def flag(self, module: ParsedModule, node: ast.AST, how: str) -> Finding:
        return self.finding(
            module,
            node,
            f"{how} observes nondeterministic set order; wrap in sorted(...) "
            "or use an ordered container",
        )


class _IterationVisitor(_SetScopeVisitor):
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expression(node.iter, self.known_sets):
            self.findings.append(self.rule.flag(self.module, node.iter, "for-loop"))
        self.generic_visit(node)

    def _check_comprehension(
        self, node: ast.ListComp | ast.GeneratorExp | ast.DictComp, kind: str
    ) -> None:
        for generator in node.generators:
            if _is_set_expression(generator.iter, self.known_sets):
                self.findings.append(
                    self.rule.flag(self.module, generator.iter, kind)
                )
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, "list comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node, "generator expression")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, "dict comprehension")

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in UnorderedIterationRule._ORDER_OBSERVING_CALLS
            and node.args
            and _is_set_expression(node.args[0], self.known_sets)
        ):
            self.findings.append(
                self.rule.flag(self.module, node.args[0], f"{node.func.id}(...)")
            )
        self.generic_visit(node)


@register_rule("DET004")
class UnorderedSumRule(LintRule):
    """float accumulation over an unordered set"""

    code = "DET004"
    summary = "float accumulation over an unordered set"
    rationale = (
        "Float addition is not associative: sum() over a set accumulates in\n"
        "hash order, so the same elements can produce different totals across\n"
        "runs -- exactly the kind of last-ulp drift that makes 'identical'\n"
        "metrics fail byte comparison.  Sum a sorted sequence (or an ordered\n"
        "container) so the accumulation order is pinned."
    )

    def check(self, module: ParsedModule) -> list[Finding]:
        visitor = _SumVisitor(self, module)
        visitor.visit(module.tree)
        return visitor.findings

    def flag(self, module: ParsedModule, node: ast.AST) -> Finding:
        return self.finding(
            module,
            node,
            "sum() over a set accumulates floats in nondeterministic hash "
            "order; sum over sorted(...) instead",
        )


class _SumVisitor(_SetScopeVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "sum"
            and node.args
            and _is_set_expression(node.args[0], self.known_sets)
        ):
            self.findings.append(self.rule.flag(self.module, node.args[0]))
        self.generic_visit(node)


@register_rule("REG001")
class RegistryBootstrapRule(ProjectRule):
    """registration invisible to its registry's lazy bootstrap"""

    code = "REG001"
    summary = "registration invisible to its registry's lazy bootstrap"
    rationale = (
        "Registries import their bootstrap modules lazily on first lookup; a\n"
        "library module that registers a component (@register_workload,\n"
        "@register_arrival, @RULES.register, ...) without being named in that\n"
        "registry's bootstrap tuple is only registered if something else\n"
        "happens to import it first -- 'llamcat list', name resolution and\n"
        "sweep grids silently miss it.  Add the module to the registry's\n"
        "bootstrap tuple (out-of-tree plugins instead load through\n"
        "LLAMCAT_PLUGINS)."
    )

    def applies(self, path: str) -> bool:
        return _in_library(path)

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterator[Finding]:
        registries: dict[str, tuple[str, ...]] = {}  # registry var -> bootstrap
        decorators: dict[str, str] = {}  # decorator fn name -> registry var

        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Assign) or isinstance(node, ast.AnnAssign):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else ([node.target] if node.value is not None else [])
                    )
                    value = node.value
                    if (
                        value is not None
                        and isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id == "Registry"
                        and len(targets) == 1
                        and isinstance(targets[0], ast.Name)
                    ):
                        registries[targets[0].id] = self._bootstrap_of(value)
                elif isinstance(node, ast.FunctionDef):
                    owner = self._wrapped_registry(node)
                    if owner is not None:
                        decorators[node.name] = owner

        for module in modules:
            mod_name = module.module_name
            for node in ast.walk(module.tree):
                if not isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                    continue
                for decorator in node.decorator_list:
                    registry_var = self._decorated_registry(
                        decorator, decorators, registries
                    )
                    if registry_var is None:
                        continue
                    bootstrap = registries.get(registry_var, ())
                    if mod_name is not None and mod_name not in bootstrap:
                        yield Finding(
                            code=self.code,
                            message=(
                                f"module {mod_name!r} registers into "
                                f"{registry_var} but is missing from its "
                                f"bootstrap {list(bootstrap)}; lazy lookups "
                                "will not see this registration"
                            ),
                            path=module.path,
                            line=decorator.lineno,
                            col=decorator.col_offset,
                        )

    @staticmethod
    def _bootstrap_of(call: ast.Call) -> tuple[str, ...]:
        for keyword in call.keywords:
            if keyword.arg == "bootstrap" and isinstance(
                keyword.value, (ast.Tuple, ast.List)
            ):
                return tuple(
                    elt.value
                    for elt in keyword.value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                )
        return ()

    @staticmethod
    def _wrapped_registry(node: ast.FunctionDef) -> str | None:
        """The registry var behind a ``def register_x: return VAR.register``."""

        for stmt in ast.walk(node):
            if (
                isinstance(stmt, ast.Return)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr == "register"
                and isinstance(stmt.value.func.value, ast.Name)
            ):
                return stmt.value.func.value.id
        return None

    @staticmethod
    def _decorated_registry(
        decorator: ast.expr,
        decorators: dict[str, str],
        registries: dict[str, tuple[str, ...]],
    ) -> str | None:
        if not isinstance(decorator, ast.Call):
            return None
        func = decorator.func
        if isinstance(func, ast.Name) and func.id in decorators:
            return decorators[func.id]
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "register"
            and isinstance(func.value, ast.Name)
            and func.value.id in registries
        ):
            return func.value.id
        return None


@register_rule("SER001")
class SerializationAsymmetryRule(LintRule):
    """to_dict writes a key from_dict never reads"""

    code = "SER001"
    summary = "to_dict writes a key from_dict never reads"
    rationale = (
        "to_dict/from_dict pairs must round-trip: every key written must be\n"
        "read back, or reloading a stored result silently drops state and\n"
        "re-serialization changes the bytes (breaking store content hashes).\n"
        "Derived ride-along blocks that are recomputed on load are the one\n"
        "legitimate exception -- mark those keys '# repro: noqa[SER001]' so\n"
        "the asymmetry is visibly deliberate."
    )

    def applies(self, path: str) -> bool:
        return _in_library(path)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, ast.FunctionDef)
            }
            to_dict = methods.get("to_dict")
            from_dict = methods.get("from_dict")
            if to_dict is None or from_dict is None:
                continue
            read = {
                n.value
                for n in ast.walk(from_dict)
                if isinstance(n, ast.Constant) and isinstance(n.value, str)
            }
            for key_node, key in self._written_keys(to_dict):
                if key not in read:
                    yield Finding(
                        code=self.code,
                        message=(
                            f"{node.name}.to_dict writes {key!r} but "
                            f"{node.name}.from_dict never reads it back"
                        ),
                        path=module.path,
                        line=key_node.lineno,
                        col=key_node.col_offset,
                    )

    @staticmethod
    def _written_keys(to_dict: ast.FunctionDef) -> Iterator[tuple[ast.expr, str]]:
        for n in ast.walk(to_dict):
            if isinstance(n, ast.Dict):
                for key in n.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        yield key, key.value
            elif isinstance(n, ast.Assign):
                for target in n.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        yield target.slice, target.slice.value


@register_rule("API001")
class FrozenMutationRule(LintRule):
    """frozen-dataclass mutation outside __post_init__"""

    code = "API001"
    summary = "frozen-dataclass mutation outside __post_init__"
    rationale = (
        "Frozen dataclasses (scenarios, configs, metrics) are hashable\n"
        "identities: sweep keys and golden fixtures assume they never change\n"
        "after construction.  object.__setattr__ is the documented backdoor\n"
        "for derived fields inside __post_init__ only; anywhere else it\n"
        "mutates an identity that other code has already keyed on.  A\n"
        "deliberate lazily-memoized derived field (never part of the content\n"
        "key) needs an explicit '# repro: noqa[API001]' justification."
    )

    def applies(self, path: str) -> bool:
        return _in_library(path)

    def check(self, module: ParsedModule) -> list[Finding]:
        findings: list[Finding] = []
        self._walk(module, module.tree, enclosing=None, findings=findings)
        return findings

    def _walk(
        self,
        module: ParsedModule,
        node: ast.AST,
        enclosing: str | None,
        findings: list[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk(module, child, enclosing=child.name, findings=findings)
                continue
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "__setattr__"
                and isinstance(child.func.value, ast.Name)
                and child.func.value.id == "object"
                and enclosing != "__post_init__"
            ):
                where = f"in {enclosing}()" if enclosing else "at module level"
                findings.append(
                    self.finding(
                        module,
                        child,
                        f"object.__setattr__ {where} mutates a frozen "
                        "dataclass outside __post_init__",
                    )
                )
            self._walk(module, child, enclosing=enclosing, findings=findings)


@register_rule("CLI001")
class StdoutPurityRule(LintRule):
    """stdout write outside the CLI rendering modules"""

    code = "CLI001"
    summary = "stdout write outside the CLI rendering modules"
    rationale = (
        "CI pins CLI output with plain 'cmp' across double runs, and sweep\n"
        "resume checks grep exact stdout lines; a print() buried in library\n"
        "code pollutes that channel (and worker processes' interleaving makes\n"
        "it nondeterministic).  Only the CLI entry point (repro/cli.py) and\n"
        "the timeline renderer may write stdout; library code logs through\n"
        "the 'repro' logger hierarchy on stderr instead."
    )

    def applies(self, path: str) -> bool:
        if not _in_library(path):
            return False
        return not (
            path.endswith("repro/cli.py") or path.endswith("repro/obs/timeline.py")
        )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                if not self._prints_to_stderr(node):
                    yield self.finding(
                        module,
                        node,
                        "print() writes stdout from library code; log via "
                        "logging.getLogger(__name__) (stderr) instead",
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "write"
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr == "stdout"
                and isinstance(node.func.value.value, ast.Name)
                and node.func.value.value.id == "sys"
            ):
                yield self.finding(
                    module,
                    node,
                    "sys.stdout.write from library code pollutes the "
                    "byte-compared CLI channel",
                )

    @staticmethod
    def _prints_to_stderr(node: ast.Call) -> bool:
        for keyword in node.keywords:
            if (
                keyword.arg == "file"
                and isinstance(keyword.value, ast.Attribute)
                and keyword.value.attr == "stderr"
            ):
                return True
        return False
