"""The AST lint engine behind ``llamcat check``.

A deliberately small framework over stdlib :mod:`ast` (no new dependencies):

* **Rules** are classes registered in :data:`RULES` -- a
  :class:`repro.registry.core.Registry`, the same decorator pattern every
  other pluggable component of the stack uses -- keyed by their code
  (``DET001``...).  A file rule inspects one parsed module; a
  :class:`ProjectRule` sees every parsed module at once (cross-file
  invariants such as registry-bootstrap coverage).
* **Suppressions**: a ``# repro: noqa[CODE]`` (or ``noqa[A,B]``) comment on a
  finding's line suppresses it.  Suppressions that suppress nothing are
  themselves findings (:data:`UNUSED_SUPPRESSION_CODE`), so stale escape
  hatches cannot accumulate; a bare ``# repro: noqa`` without codes is
  rejected (:data:`MALFORMED_SUPPRESSION_CODE`) -- blanket waivers would
  silently cover future rules.
* **Determinism**: findings sort by ``(path, line, col, code)`` and both the
  text and JSON renderings are canonical, so ``llamcat check`` output is
  byte-identical across runs (it is itself subject to the repo's CI ``cmp``
  discipline).
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.common.errors import ConfigError
from repro.registry.core import Registry

#: Engine-level codes (not AST rules, but documented and explainable).
UNUSED_SUPPRESSION_CODE = "NOQ001"
MALFORMED_SUPPRESSION_CODE = "NOQ002"
SYNTAX_ERROR_CODE = "SYN001"

#: Matches suppression comments, with or without their bracketed code list
#: (rule codes, comma-separated; the list is validated by the scanner).
NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?P<codes>\[[A-Za-z0-9_,\s]*\])?", re.IGNORECASE
)

#: Directories never descended into during file discovery.
SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})

#: The lint-rule registry: ``code -> rule class``.  Registered through
#: :func:`register_rule`, bootstrapped from the built-in rule module exactly
#: like the scenario registries bootstrap from their preset modules.
RULES: Registry = Registry("lint rule", bootstrap=("repro.analysis.rules",))


def register_rule(code: str, **kwargs: Any) -> Callable[[type], type]:
    """Register a :class:`LintRule` subclass under its rule code."""

    return RULES.register(code, **kwargs)


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


@dataclass(slots=True)
class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    path: str
    source: str
    tree: ast.Module
    #: Line -> requested suppression codes (empty set for a bare ``noqa``).
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: Lines whose ``repro: noqa`` comment is malformed (no code list).
    malformed_noqa: tuple[int, ...] = ()

    @property
    def parts(self) -> tuple[str, ...]:
        return Path(self.path).parts

    @property
    def module_name(self) -> str | None:
        """Dotted module name, rooted at the last ``repro`` path segment."""

        parts = self.parts
        if "repro" not in parts:
            return None
        start = len(parts) - 1 - parts[::-1].index("repro")
        dotted = list(parts[start:])
        dotted[-1] = dotted[-1].removesuffix(".py")
        if dotted[-1] == "__init__":
            dotted.pop()
        return ".".join(dotted)


class LintRule:
    """Base class of all per-file rules.

    Subclasses set ``code`` / ``summary`` / ``rationale`` and implement
    :meth:`check`; override :meth:`applies` to scope the rule to part of the
    tree (e.g. library code only).  ``rationale`` is what ``llamcat check
    --explain CODE`` prints -- it must say *why* the invariant exists, not
    just restate the message.
    """

    code: str = ""
    summary: str = ""
    rationale: str = ""

    def applies(self, path: str) -> bool:
        return True

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: ParsedModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=self.code,
            message=message,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


class ProjectRule(LintRule):
    """A rule that needs every parsed module at once (cross-file invariants)."""

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        return ()

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        raise NotImplementedError


def all_rules() -> list[LintRule]:
    """Instantiate every registered rule, in code order."""

    return [RULES.get(code)() for code in RULES.names()]


def rule_codes() -> list[str]:
    """Every explainable code: registered rules plus the engine codes."""

    return sorted(
        set(RULES.names())
        | {UNUSED_SUPPRESSION_CODE, MALFORMED_SUPPRESSION_CODE, SYNTAX_ERROR_CODE}
    )


#: ``--explain`` docs of the engine-level codes.
_ENGINE_EXPLANATIONS = {
    UNUSED_SUPPRESSION_CODE: (
        "unused suppression",
        "A '# repro: noqa[CODE]' comment suppressed nothing.  Stale escape\n"
        "hatches hide future violations on their line, so they must be\n"
        "removed the moment the code they excused is gone.",
    ),
    MALFORMED_SUPPRESSION_CODE: (
        "malformed suppression",
        "A '# repro: noqa' comment must name the rule codes it suppresses,\n"
        "e.g. '# repro: noqa[DET002]'.  Blanket waivers would silently cover\n"
        "rules added later, defeating unused-suppression detection.",
    ),
    SYNTAX_ERROR_CODE: (
        "syntax error",
        "The file failed to parse; none of the lint rules ran over it.",
    ),
}


def explain_rule(code: str) -> str:
    """Human documentation of one rule code (for ``--explain``)."""

    normalized = code.strip().upper()
    if normalized in _ENGINE_EXPLANATIONS:
        summary, rationale = _ENGINE_EXPLANATIONS[normalized]
        body = rationale
    else:
        try:
            rule = RULES.get(normalized)()
        except ConfigError:
            raise ConfigError(
                f"unknown rule code {code!r}; known codes: {', '.join(rule_codes())}"
            ) from None
        summary, body = rule.summary, rule.rationale.strip()
    return (
        f"{normalized}: {summary}\n\n{body}\n\n"
        f"Suppress a deliberate violation with '# repro: noqa[{normalized}]' "
        f"on its line\n(unused suppressions are themselves flagged)."
    )


# -- parsing ------------------------------------------------------------------------------
def _comment_tokens(source: str) -> Iterator[tuple[int, str]]:
    """Yield ``(line, text)`` for every real comment token of ``source``.

    Tokenizing (rather than regex-scanning raw lines) keeps docstrings and
    string literals that merely *mention* the noqa syntax -- like this
    module's own documentation -- from registering as suppressions.
    """

    readline = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return  # unparseable tail; ast.parse already reported the real error


def _scan_suppressions(source: str) -> tuple[dict[int, set[str]], tuple[int, ...]]:
    suppressions: dict[int, set[str]] = {}
    malformed: list[int] = []
    for lineno, text in _comment_tokens(source):
        match = NOQA_PATTERN.search(text)
        if match is None:
            continue
        codes_group = match.group("codes")
        if not codes_group:
            malformed.append(lineno)
            continue
        codes = {
            c.strip().upper() for c in codes_group.strip("[]").split(",") if c.strip()
        }
        if not codes:
            malformed.append(lineno)
            continue
        suppressions[lineno] = codes
    return suppressions, tuple(malformed)


def parse_module(path: str, source: str) -> ParsedModule:
    """Parse one file into the shared per-rule representation.

    Raises :class:`SyntaxError` (the caller maps it to a
    :data:`SYNTAX_ERROR_CODE` finding so one broken file cannot abort a whole
    check run).
    """

    tree = ast.parse(source, filename=path)
    suppressions, malformed = _scan_suppressions(source)
    return ParsedModule(
        path=path,
        source=source,
        tree=tree,
        suppressions=suppressions,
        malformed_noqa=malformed,
    )


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``*.py`` list."""

    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not SKIPPED_DIRS.intersection(candidate.parts):
                    seen.setdefault(candidate, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
        elif not path.exists():
            raise ConfigError(f"no such file or directory: {path}")
    return sorted(seen)


# -- the check loop -----------------------------------------------------------------------
def _select_rules(select: Sequence[str] | None) -> list[LintRule]:
    rules = all_rules()
    if select is None:
        return rules
    wanted = {code.strip().upper() for code in select}
    unknown = wanted - {rule.code for rule in rules}
    if unknown:
        raise ConfigError(
            f"unknown rule code(s) {sorted(unknown)}; known: {RULES.names()}"
        )
    return [rule for rule in rules if rule.code in wanted]


def _apply_suppressions(
    module: ParsedModule, findings: Iterable[Finding]
) -> tuple[list[Finding], set[tuple[int, str]]]:
    """Split ``findings`` into surviving ones and the (line, code) hits used."""

    kept: list[Finding] = []
    used: set[tuple[int, str]] = set()
    for finding in findings:
        codes = module.suppressions.get(finding.line)
        if codes is not None and finding.code in codes:
            used.add((finding.line, finding.code))
        else:
            kept.append(finding)
    return kept, used


def _suppression_findings(
    module: ParsedModule, used: set[tuple[int, str]]
) -> Iterator[Finding]:
    for lineno in module.malformed_noqa:
        yield Finding(
            code=MALFORMED_SUPPRESSION_CODE,
            message="'# repro: noqa' must name codes, e.g. '# repro: noqa[DET001]'",
            path=module.path,
            line=lineno,
        )
    for lineno in sorted(module.suppressions):
        for code in sorted(module.suppressions[lineno]):
            if (lineno, code) not in used:
                yield Finding(
                    code=UNUSED_SUPPRESSION_CODE,
                    message=f"suppression of {code} matches no finding on this line",
                    path=module.path,
                    line=lineno,
                )


def check_modules(
    modules: Sequence[ParsedModule], select: Sequence[str] | None = None
) -> list[Finding]:
    """Run the (selected) rules over already-parsed modules."""

    rules = _select_rules(select)
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    raw_by_path: dict[str, list[Finding]] = {m.path: [] for m in modules}
    for module in modules:
        for rule in file_rules:
            if rule.applies(module.path):
                raw_by_path[module.path].extend(rule.check(module))
    for rule in project_rules:
        scoped = [m for m in modules if rule.applies(m.path)]
        for finding in rule.check_project(scoped):
            if finding.path in raw_by_path:
                raw_by_path[finding.path].append(finding)
            else:  # a project rule may report against a path outside the set
                raw_by_path.setdefault(finding.path, []).append(finding)

    module_by_path = {m.path: m for m in modules}
    findings: list[Finding] = []
    for path, raw in raw_by_path.items():
        module = module_by_path.get(path)
        if module is None:
            findings.extend(raw)
            continue
        kept, used = _apply_suppressions(module, raw)
        findings.extend(kept)
        findings.extend(_suppression_findings(module, used))
    return sorted(findings, key=lambda f: f.sort_key)


def check_source(
    source: str, path: str = "src/repro/module.py", select: Sequence[str] | None = None
) -> list[Finding]:
    """Check one in-memory source string (the unit-test entry point).

    ``path`` controls which path-scoped rules apply; the default makes the
    source count as library code.
    """

    try:
        module = parse_module(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                code=SYNTAX_ERROR_CODE,
                message=str(exc.msg),
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    return check_modules([module], select=select)


def check_paths(
    paths: Sequence[str | Path], select: Sequence[str] | None = None
) -> list[Finding]:
    """Discover, parse and check every ``*.py`` file under ``paths``."""

    modules: list[ParsedModule] = []
    findings: list[Finding] = []
    for file_path in discover_files(paths):
        text = file_path.read_text(encoding="utf-8")
        posix = file_path.as_posix()
        try:
            modules.append(parse_module(posix, text))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    code=SYNTAX_ERROR_CODE,
                    message=str(exc.msg),
                    path=posix,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                )
            )
    findings.extend(check_modules(modules, select=select))
    return sorted(findings, key=lambda f: f.sort_key)


def findings_to_json(findings: Sequence[Finding], files_checked: int) -> str:
    """Canonical JSON report (SARIF-flavoured, byte-stable across runs)."""

    by_code: dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    payload = {
        "tool": {"name": "llamcat-check", "rules": rule_codes()},
        "results": [f.to_dict() for f in findings],
        "summary": {
            "files_checked": files_checked,
            "findings": len(findings),
            "by_code": by_code,
        },
    }
    return json.dumps(payload, sort_keys=True, indent=2)
