"""Hardware configuration dataclasses (Table 5 of the paper).

Every structural parameter of the simulated system is captured here so that a
single :class:`SystemConfig` object fully determines the hardware; the
experiment harness sweeps these objects (cache size for Fig 9, etc.).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.common.address import is_power_of_two
from repro.common.errors import ConfigError

KIB = 1024
MIB = 1024 * KIB


class ReqRespArbitration(enum.Enum):
    """Request-vs-response arbitration at the shared cache-storage port (§3.3)."""

    RESPONSE_FIRST = "response-queue-first"
    REQUEST_FIRST = "request-first"


class WritePolicy(enum.Enum):
    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"


class AllocPolicy(enum.Enum):
    ALLOC_ON_FILL = "alloc-on-fill"
    ALLOC_ON_MISS = "alloc-on-miss"


class WriteAllocPolicy(enum.Enum):
    WRITE_ALLOCATE = "write-allocate"
    WRITE_NO_ALLOCATE = "write-no-allocate"


@dataclass(frozen=True, slots=True)
class CoreConfig:
    """Vector-core parameters (Table 5, "Core" row)."""

    num_cores: int = 16
    num_inst_windows: int = 4
    inst_window_depth: int = 128
    vector_lanes: int = 128          # elements processed per vector instruction
    vector_bytes: int = 128          # "vector-len=128B" in Table 5
    issue_width: int = 1             # memory requests issued per cycle per core
    compute_cycles_per_vector_mac: int = 1

    def validate(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError("num_cores must be positive")
        if self.num_inst_windows <= 0:
            raise ConfigError("num_inst_windows must be positive")
        if self.inst_window_depth <= 0:
            raise ConfigError("inst_window_depth must be positive")
        if self.vector_lanes <= 0 or self.vector_bytes <= 0:
            raise ConfigError("vector dimensions must be positive")
        if self.issue_width <= 0:
            raise ConfigError("issue_width must be positive")


@dataclass(frozen=True, slots=True)
class L1Config:
    """Private streaming L1 (Table 5, "L1 cache" row)."""

    size_bytes: int = 64 * KIB
    line_size: int = 64
    associativity: int = 8
    latency: int = 1
    alloc_policy: AllocPolicy = AllocPolicy.ALLOC_ON_FILL
    write_policy: WritePolicy = WritePolicy.WRITE_THROUGH
    write_alloc: WriteAllocPolicy = WriteAllocPolicy.WRITE_NO_ALLOCATE
    streaming: bool = True

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_size * self.associativity)

    def validate(self) -> None:
        if not is_power_of_two(self.line_size):
            raise ConfigError("L1 line_size must be a power of two")
        if self.size_bytes % (self.line_size * self.associativity) != 0:
            raise ConfigError("L1 size must be divisible by line_size*associativity")
        if self.latency < 0:
            raise ConfigError("L1 latency must be non-negative")


@dataclass(frozen=True, slots=True)
class L2Config:
    """Shared sliced L2 / LLC (Table 5, "L2 slice" row)."""

    size_bytes: int = 16 * MIB
    num_slices: int = 8
    line_size: int = 64
    associativity: int = 8
    hit_latency: int = 3
    data_latency: int = 25
    mshr_latency: int = 5
    mshr_num_entries: int = 6       # per slice
    mshr_num_targets: int = 8       # merged requests per entry
    req_q_size: int = 12
    resp_q_size: int = 64
    alloc_policy: AllocPolicy = AllocPolicy.ALLOC_ON_FILL
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    write_alloc: WriteAllocPolicy = WriteAllocPolicy.WRITE_ALLOCATE
    req_resp_arbitration: ReqRespArbitration = ReqRespArbitration.RESPONSE_FIRST

    @property
    def slice_size_bytes(self) -> int:
        return self.size_bytes // self.num_slices

    @property
    def sets_per_slice(self) -> int:
        return self.slice_size_bytes // (self.line_size * self.associativity)

    def validate(self) -> None:
        if not is_power_of_two(self.num_slices):
            raise ConfigError("num_slices must be a power of two")
        if not is_power_of_two(self.line_size):
            raise ConfigError("L2 line_size must be a power of two")
        if self.size_bytes % self.num_slices != 0:
            raise ConfigError("L2 size must divide evenly across slices")
        if self.slice_size_bytes % (self.line_size * self.associativity) != 0:
            raise ConfigError("slice size must be divisible by line_size*associativity")
        if not is_power_of_two(self.sets_per_slice):
            raise ConfigError(
                f"sets per slice must be a power of two, got {self.sets_per_slice}"
            )
        for name in ("hit_latency", "data_latency", "mshr_latency"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.mshr_num_entries <= 0 or self.mshr_num_targets <= 0:
            raise ConfigError("MSHR dimensions must be positive")
        if self.req_q_size <= 0 or self.resp_q_size <= 0:
            raise ConfigError("queue sizes must be positive")


@dataclass(frozen=True, slots=True)
class NoCConfig:
    """Interconnect between cores and LLC slices."""

    request_latency: int = 8
    response_latency: int = 8
    # Requests accepted per slice input port per cycle.
    slice_port_width: int = 1

    def validate(self) -> None:
        if self.request_latency < 0 or self.response_latency < 0:
            raise ConfigError("NoC latencies must be non-negative")
        if self.slice_port_width <= 0:
            raise ConfigError("slice_port_width must be positive")


@dataclass(frozen=True, slots=True)
class DramConfig:
    """DDR5-style main memory (Table 5, "DRAM" row).

    Timing parameters are given in memory-controller cycles of the data-bus
    clock and converted to core cycles by the DRAM model using
    ``core_freq_ghz`` / ``io_freq_mhz``.
    """

    standard: str = "DDR5_8Gb_x16"
    num_channels: int = 4
    num_ranks: int = 4
    num_banks: int = 16              # banks per rank (4 bank groups x 4 banks)
    row_bytes: int = 2 * KIB
    io_freq_mhz: float = 1600.0      # DDR5-3200: 1600 MHz clock, 3200 MT/s
    burst_length: int = 16
    device_width_bits: int = 16
    channel_width_bits: int = 32     # two x16 devices per channel
    # Timing in DRAM clock cycles (DDR5-3200 grade, JEDEC-typical values).
    tCL: int = 26
    tRCD: int = 26
    tRP: int = 26
    tRAS: int = 52
    tRC: int = 78
    tCCD: int = 8                    # back-to-back column commands, same bank group
    tRRD: int = 8
    tWR: int = 48
    queue_depth: int = 32            # per-channel controller queue
    #: Fixed memory-controller + PHY + on-die routing overhead per access, in
    #: nanoseconds.  This is latency only (it does not occupy the data bus); it
    #: models everything between the LLC miss leaving the slice and the first
    #: DRAM command, which dominates loaded memory latency on real devices.
    controller_overhead_ns: float = 55.0

    @property
    def lines_per_burst(self) -> int:
        """Bytes transferred per burst divided by a 64B line (>=1)."""

        burst_bytes = self.burst_length * self.channel_width_bits // 8
        return max(1, burst_bytes // 64)

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Aggregate peak bandwidth over all channels in GB/s."""

        per_channel = 2 * self.io_freq_mhz * 1e6 * self.channel_width_bits / 8
        return per_channel * self.num_channels / 1e9

    def validate(self) -> None:
        if not is_power_of_two(self.num_channels):
            raise ConfigError("num_channels must be a power of two")
        if not is_power_of_two(self.num_ranks):
            raise ConfigError("num_ranks must be a power of two")
        if not is_power_of_two(self.num_banks):
            raise ConfigError("num_banks must be a power of two")
        if not is_power_of_two(self.row_bytes):
            raise ConfigError("row_bytes must be a power of two")
        if self.io_freq_mhz <= 0:
            raise ConfigError("io_freq_mhz must be positive")
        if self.queue_depth <= 0:
            raise ConfigError("queue_depth must be positive")
        if self.controller_overhead_ns < 0:
            raise ConfigError("controller_overhead_ns must be non-negative")
        for name in ("tCL", "tRCD", "tRP", "tRAS", "tRC", "tCCD", "tRRD", "tWR"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Complete simulated system (Table 5)."""

    frequency_ghz: float = 1.96
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: L1Config = field(default_factory=L1Config)
    l2: L2Config = field(default_factory=L2Config)
    noc: NoCConfig = field(default_factory=NoCConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    #: Device KV-cache capacity in tokens for the serving layer's memory model
    #: (:mod:`repro.serve.kvcache`): how many prompt+generated tokens of KV
    #: state fit on this accelerator.  A serving-level knob -- like request
    #: streams, it is deliberately untouched by tier scaling -- that only
    #: binds when a scenario opts in with ``kv_budget="system"``.
    kv_budget_tokens: int = 16384

    def validate(self) -> "SystemConfig":
        if self.frequency_ghz <= 0:
            raise ConfigError("frequency_ghz must be positive")
        if self.kv_budget_tokens <= 0:
            raise ConfigError("kv_budget_tokens must be positive")
        self.core.validate()
        self.l1.validate()
        self.l2.validate()
        self.noc.validate()
        self.dram.validate()
        if self.l1.line_size != self.l2.line_size:
            raise ConfigError("L1 and L2 line sizes must match")
        return self

    def with_l2_size(self, size_bytes: int) -> "SystemConfig":
        """Return a copy with a different total L2 capacity (used by Fig 9)."""

        return replace(self, l2=replace(self.l2, size_bytes=size_bytes)).validate()

    def with_cores(self, num_cores: int) -> "SystemConfig":
        return replace(self, core=replace(self.core, num_cores=num_cores)).validate()

    @property
    def dram_cycles_per_core_cycle(self) -> float:
        """Ratio used to convert DRAM-clock timing into core cycles."""

        return (self.dram.io_freq_mhz * 1e-3) / self.frequency_ghz
