"""Scale tiers: run paper experiments at reduced size with preserved ratios.

A pure-Python cycle-level simulator cannot sweep the paper's full 16K-32K
sequence lengths dozens of times inside a benchmark session, so every
experiment accepts a :class:`ScaleTier`.  Scaling divides the sequence length
and the L2 capacity by the same factor which keeps the two ratios that actually
determine policy behaviour invariant:

* working-set bytes : L2 capacity (drives capacity misses, Fig 9), and
* outstanding misses : MSHR entries (drives miss-handling contention, Fig 7).
"""

from __future__ import annotations

import enum
from dataclasses import replace

from repro.common.errors import ConfigError
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig

#: Minimum L2 capacity after scaling; below this the set count degenerates.
_MIN_L2_BYTES = 64 * 1024


class ScaleTier(enum.Enum):
    """How much to shrink paper-sized experiments."""

    FULL = 1
    PAPER_SCALED = 8
    CI = 32
    #: Smallest tier: for quick regeneration of every figure on a laptop / CI box.
    SMOKE = 64

    @property
    def divisor(self) -> int:
        return self.value


def parse_tier(tier: "ScaleTier | str") -> ScaleTier:
    """Coerce a tier name (``"ci"``, ``"paper-scaled"``...) into a ScaleTier."""

    if isinstance(tier, ScaleTier):
        return tier
    try:
        return ScaleTier[str(tier).upper().replace("-", "_")]
    except KeyError:
        names = sorted(t.name.lower().replace("_", "-") for t in ScaleTier)
        raise ConfigError(f"unknown scale tier {tier!r} (choose from {names})") from None


def scale_seq_len(seq_len: int, tier: ScaleTier) -> int:
    """Scale a sequence length down, keeping at least 64 tokens."""

    scaled = max(64, seq_len // tier.divisor)
    return scaled


def scale_workload(workload: WorkloadConfig, tier: ScaleTier) -> WorkloadConfig:
    """Return the workload with its sequence length scaled for ``tier``."""

    return workload.with_seq_len(scale_seq_len(workload.shape.seq_len, tier))


def scale_l2_bytes(size_bytes: int, tier: ScaleTier) -> int:
    """Scale an L2 capacity down, keeping it a usable power-of-two-set cache."""

    scaled = max(_MIN_L2_BYTES, size_bytes // tier.divisor)
    return scaled


def scale_system(system: SystemConfig, tier: ScaleTier) -> SystemConfig:
    """Return the system with its L2 capacity scaled for ``tier``."""

    new_l2 = replace(system.l2, size_bytes=scale_l2_bytes(system.l2.size_bytes, tier))
    return replace(system, l2=new_l2).validate()


def scale_experiment(
    system: SystemConfig, workload: WorkloadConfig, tier: ScaleTier
) -> tuple[SystemConfig, WorkloadConfig]:
    """Scale a (system, workload) pair coherently."""

    if not isinstance(tier, ScaleTier):
        raise ConfigError(f"tier must be a ScaleTier, got {tier!r}")
    return scale_system(system, tier), scale_workload(workload, tier)
