"""Workload configuration: GQA attention shapes and decode operators.

The paper evaluates the Logit operator (Q @ K^T) of the decode stage for
Llama3-70B (H=8 KV head groups, G=8 query heads per group, D=128) and
Llama3-405B (H=8, G=16, D=128) at several sequence lengths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.common.errors import ConfigError


class OperatorKind(enum.Enum):
    """Decode-stage attention operators."""

    LOGIT = "logit"      # AttScore[h, g, l] = sum_d Q[h, g, d] * K[h, l, d]
    ATTEND = "attend"    # Out[h, g, d]      = sum_l AttScore[h, g, l] * V[h, l, d]


@dataclass(frozen=True, slots=True)
class GQAShape:
    """Shape of a grouped-query attention operator in the decode stage.

    Attributes
    ----------
    num_kv_heads:
        ``H`` -- number of KV head groups (each holds one K/V head).
    group_size:
        ``G`` -- query heads sharing one KV head.
    head_dim:
        ``D`` -- per-head embedding dimension.
    seq_len:
        ``L`` -- context length (KV-cache length) at this decode step.
    """

    num_kv_heads: int
    group_size: int
    head_dim: int
    seq_len: int

    def validate(self) -> "GQAShape":
        for name in ("num_kv_heads", "group_size", "head_dim", "seq_len"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"GQAShape.{name} must be positive")
        return self

    @property
    def num_q_heads(self) -> int:
        return self.num_kv_heads * self.group_size

    def with_seq_len(self, seq_len: int) -> "GQAShape":
        return replace(self, seq_len=seq_len).validate()


@dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """A decode-stage operator instance to simulate."""

    name: str
    shape: GQAShape
    operator: OperatorKind = OperatorKind.LOGIT
    element_bytes: int = 2          # fp16 / bf16 KV cache
    batch_size: int = 1

    def validate(self) -> "WorkloadConfig":
        self.shape.validate()
        if self.element_bytes not in (1, 2, 4):
            raise ConfigError(f"element_bytes must be 1, 2 or 4, got {self.element_bytes}")
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        return self

    # ---- derived tensor sizes (bytes) -------------------------------------------
    @property
    def kv_tensor_bytes(self) -> int:
        """Size of one K (or V) tensor: H x L x D elements."""

        s = self.shape
        return s.num_kv_heads * s.seq_len * s.head_dim * self.element_bytes * self.batch_size

    @property
    def query_bytes(self) -> int:
        s = self.shape
        return s.num_q_heads * s.head_dim * self.element_bytes * self.batch_size

    @property
    def output_bytes(self) -> int:
        s = self.shape
        if self.operator == OperatorKind.LOGIT:
            return s.num_q_heads * s.seq_len * self.element_bytes * self.batch_size
        return s.num_q_heads * s.head_dim * self.element_bytes * self.batch_size

    @property
    def working_set_bytes(self) -> int:
        """Total bytes touched once by the operator (K or V + Q + output)."""

        return self.kv_tensor_bytes + self.query_bytes + self.output_bytes

    @property
    def flops(self) -> int:
        """Multiply-accumulate count (2 ops per MAC)."""

        s = self.shape
        if self.operator == OperatorKind.LOGIT:
            macs = s.num_q_heads * s.seq_len * s.head_dim
        else:
            macs = s.num_q_heads * s.head_dim * s.seq_len
        return 2 * macs * self.batch_size

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of unique traffic -- well below 1 for decode."""

        return self.flops / self.working_set_bytes

    def with_seq_len(self, seq_len: int) -> "WorkloadConfig":
        return replace(self, shape=self.shape.with_seq_len(seq_len)).validate()

    def describe(self) -> str:
        s = self.shape
        return (
            f"{self.name}: {self.operator.value} H={s.num_kv_heads} G={s.group_size} "
            f"D={s.head_dim} L={s.seq_len} ({self.kv_tensor_bytes / 2**20:.1f} MiB KV)"
        )
