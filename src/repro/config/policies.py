"""Policy configuration: arbitration and throttling (Tables 1-4 of the paper)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError


class ArbitrationKind(enum.Enum):
    """Request-selection policy of the LLC-slice arbiter (§4.1, §4.3)."""

    FCFS = "fcfs"              # default first-come first-served
    BALANCED = "balanced"      # "B": smallest per-core progress counter first
    MSHR_AWARE = "ma"          # "MA": predicted cache hits > MSHR hits > others
    BALANCED_MSHR_AWARE = "bma"  # "BMA": MA with balanced tie-breaking
    COBRRA = "cobrra"          # baseline (Bagchi et al., TECS 2024)


class ThrottleKind(enum.Enum):
    """Thread-throttling controller (§4.2, §7.4)."""

    NONE = "none"              # unoptimized
    DYNCTA = "dyncta"          # Kayiran et al., PACT 2013 baseline
    LCS = "lcs"                # Lee et al., HPCA 2014 baseline
    DYNMG = "dynmg"            # two-level dynamic multi-gear (this paper)


class ContentionLevel(enum.IntEnum):
    """Cache-contention classification (Table 3)."""

    LOW = 0
    NORMAL = 1
    HIGH = 2
    EXTREME = 3


@dataclass(frozen=True, slots=True)
class ContentionThresholds:
    """t_cs (proportion of cache-stall cycles) boundaries from Table 3."""

    low_upper: float = 0.1
    normal_upper: float = 0.2
    high_upper: float = 0.375

    def classify(self, stall_ratio: float) -> ContentionLevel:
        if stall_ratio < 0.0 or stall_ratio > 1.0:
            raise ConfigError(f"stall ratio must be within [0, 1], got {stall_ratio}")
        if stall_ratio < self.low_upper:
            return ContentionLevel.LOW
        if stall_ratio < self.normal_upper:
            return ContentionLevel.NORMAL
        if stall_ratio < self.high_upper:
            return ContentionLevel.HIGH
        return ContentionLevel.EXTREME

    def validate(self) -> "ContentionThresholds":
        if not 0.0 < self.low_upper < self.normal_upper < self.high_upper <= 1.0:
            raise ConfigError(
                "contention thresholds must satisfy 0 < low < normal < high <= 1"
            )
        return self


@dataclass(frozen=True, slots=True)
class MultiGearParams:
    """Global multi-gear controller (Algorithm 1, Tables 1-3)."""

    sampling_period: int = 2000
    max_gear: int = 4
    # Table 1: fraction of cores throttled at each gear (index = gear).
    gear_fractions: tuple[float, ...] = (0.0, 1 / 8, 1 / 4, 1 / 2, 3 / 4)
    thresholds: ContentionThresholds = field(default_factory=ContentionThresholds)

    def validate(self) -> "MultiGearParams":
        if self.sampling_period <= 0:
            raise ConfigError("sampling_period must be positive")
        if self.max_gear + 1 != len(self.gear_fractions):
            raise ConfigError(
                f"gear_fractions must have max_gear+1={self.max_gear + 1} entries, "
                f"got {len(self.gear_fractions)}"
            )
        if list(self.gear_fractions) != sorted(self.gear_fractions):
            raise ConfigError("gear_fractions must be non-decreasing")
        if any(not 0.0 <= f < 1.0 for f in self.gear_fractions):
            raise ConfigError("gear fractions must lie in [0, 1)")
        self.thresholds.validate()
        return self


@dataclass(frozen=True, slots=True)
class InCoreThrottleParams:
    """Per-core sub-period controller (Table 4)."""

    sub_period: int = 400
    c_idle_upper: int = 4
    c_mem_upper: int = 250
    c_mem_lower: int = 180
    min_thread_blocks: int = 1

    def validate(self) -> "InCoreThrottleParams":
        if self.sub_period <= 0:
            raise ConfigError("sub_period must be positive")
        if self.c_mem_lower >= self.c_mem_upper:
            raise ConfigError("c_mem_lower must be below c_mem_upper")
        if self.c_idle_upper < 0:
            raise ConfigError("c_idle_upper must be non-negative")
        if self.min_thread_blocks < 1:
            raise ConfigError("min_thread_blocks must be at least 1")
        return self


@dataclass(frozen=True, slots=True)
class DynctaParams:
    """DYNCTA baseline parameters (conservative, per the original paper)."""

    sampling_period: int = 2048
    c_idle_threshold: int = 16
    c_mem_high: int = 1228   # ~0.6 * sampling_period, as swept in the original work
    c_mem_low: int = 409     # ~0.2 * sampling_period
    min_thread_blocks: int = 1

    def validate(self) -> "DynctaParams":
        if self.sampling_period <= 0:
            raise ConfigError("sampling_period must be positive")
        if self.c_mem_low >= self.c_mem_high:
            raise ConfigError("c_mem_low must be below c_mem_high")
        if self.min_thread_blocks < 1:
            raise ConfigError("min_thread_blocks must be at least 1")
        return self


@dataclass(frozen=True, slots=True)
class LcsParams:
    """LCS baseline: observe the first thread block, then fix the TB count."""

    observation_blocks: int = 1
    # LCS picks the thread-block count that keeps estimated memory latency per
    # block below this multiple of the observed isolated latency.
    target_latency_factor: float = 2.0

    def validate(self) -> "LcsParams":
        if self.observation_blocks < 1:
            raise ConfigError("observation_blocks must be at least 1")
        if self.target_latency_factor <= 1.0:
            raise ConfigError("target_latency_factor must exceed 1.0")
        return self


@dataclass(frozen=True, slots=True)
class MshrAwareParams:
    """MSHR-aware arbitration structures (§4.3)."""

    hit_buffer_size: int = 16
    # sent_reqs entries retire after hit_latency + mshr_latency cycles; the
    # structure itself only needs to hold that many in-flight requests.
    sent_reqs_size: int = 16

    def validate(self) -> "MshrAwareParams":
        if self.hit_buffer_size <= 0 or self.sent_reqs_size <= 0:
            raise ConfigError("hit_buffer / sent_reqs sizes must be positive")
        return self


@dataclass(frozen=True, slots=True)
class CobrraParams:
    """COBRRA baseline knobs (contention-aware request-response arbitration)."""

    # Occupancy of the response queue (fraction) above which responses are
    # prioritised over requests.
    resp_priority_threshold: float = 0.5
    # Size of the reuse-predictor table used to prioritise likely-hit requests.
    predictor_entries: int = 64

    def validate(self) -> "CobrraParams":
        if not 0.0 < self.resp_priority_threshold <= 1.0:
            raise ConfigError("resp_priority_threshold must be in (0, 1]")
        if self.predictor_entries <= 0:
            raise ConfigError("predictor_entries must be positive")
        return self


@dataclass(frozen=True, slots=True)
class PolicyConfig:
    """Complete policy selection for one simulation run."""

    arbitration: ArbitrationKind = ArbitrationKind.FCFS
    throttle: ThrottleKind = ThrottleKind.NONE
    multigear: MultiGearParams = field(default_factory=MultiGearParams)
    incore: InCoreThrottleParams = field(default_factory=InCoreThrottleParams)
    dyncta: DynctaParams = field(default_factory=DynctaParams)
    lcs: LcsParams = field(default_factory=LcsParams)
    mshr_aware: MshrAwareParams = field(default_factory=MshrAwareParams)
    cobrra: CobrraParams = field(default_factory=CobrraParams)

    def validate(self) -> "PolicyConfig":
        self.multigear.validate()
        self.incore.validate()
        self.dyncta.validate()
        self.lcs.validate()
        self.mshr_aware.validate()
        self.cobrra.validate()
        return self

    # -- (de)serialization (Scenario round-trips, result stores) -------------------
    @classmethod
    def from_dict(cls, data: dict) -> "PolicyConfig":
        """Rebuild a policy from :func:`repro.sweep.spec.config_to_jsonable` output.

        Absent sections fall back to their defaults, so partial dicts (e.g.
        only ``{"throttle": "dynmg"}``) are accepted.
        """

        multigear = dict(data.get("multigear", {}))
        thresholds = multigear.pop("thresholds", None)
        gear_fractions = multigear.pop("gear_fractions", None)
        return cls(
            arbitration=ArbitrationKind(data.get("arbitration", ArbitrationKind.FCFS.value)),
            throttle=ThrottleKind(data.get("throttle", ThrottleKind.NONE.value)),
            multigear=MultiGearParams(
                **multigear,
                **({"gear_fractions": tuple(gear_fractions)} if gear_fractions else {}),
                **({"thresholds": ContentionThresholds(**thresholds)} if thresholds else {}),
            ),
            incore=InCoreThrottleParams(**data.get("incore", {})),
            dyncta=DynctaParams(**data.get("dyncta", {})),
            lcs=LcsParams(**data.get("lcs", {})),
            mshr_aware=MshrAwareParams(**data.get("mshr_aware", {})),
            cobrra=CobrraParams(**data.get("cobrra", {})),
        ).validate()

    # -- fluent construction helpers used by the experiment harness ----------------
    def with_arbitration(self, kind: ArbitrationKind) -> "PolicyConfig":
        return replace(self, arbitration=kind).validate()

    def with_throttle(self, kind: ThrottleKind) -> "PolicyConfig":
        return replace(self, throttle=kind).validate()

    @property
    def label(self) -> str:
        """Short label matching the paper's legends (e.g. ``dynmg+BMA``)."""

        throttle_names = {
            ThrottleKind.NONE: "unopt",
            ThrottleKind.DYNCTA: "dyncta",
            ThrottleKind.LCS: "lcs",
            ThrottleKind.DYNMG: "dynmg",
        }
        arb_names = {
            ArbitrationKind.FCFS: "",
            ArbitrationKind.BALANCED: "B",
            ArbitrationKind.MSHR_AWARE: "MA",
            ArbitrationKind.BALANCED_MSHR_AWARE: "BMA",
            ArbitrationKind.COBRRA: "cobrra",
        }
        t = throttle_names[self.throttle]
        a = arb_names[self.arbitration]
        if not a:
            return t
        if t == "unopt":
            return a
        return f"{t}+{a}"
