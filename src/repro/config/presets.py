"""Named presets matching the paper's experimental setup (Table 5, §6.2).

Every preset registers itself in the scenario registries
(:mod:`repro.registry`), which is what makes it addressable by name from the
CLI, declarative sweep grids and the :class:`repro.api.Simulation` builder.
Adding a workload, system or policy is *only* a matter of writing one decorated
builder here (or in downstream code) -- no other layer needs editing.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config.policies import ArbitrationKind, PolicyConfig, ThrottleKind
from repro.config.system import MIB, SystemConfig
from repro.config.workload import GQAShape, OperatorKind, WorkloadConfig
from repro.registry import (
    POLICIES,
    register_policy,
    register_system,
    register_workload,
)

# ---------------------------------------------------------------------------------
# Hardware presets
# ---------------------------------------------------------------------------------


@register_system("table5", description="Table 5 system: 1.96 GHz, 16 cores, 16 MB sliced L2")
def table5_system() -> SystemConfig:
    """The simulated system of Table 5 (1.96 GHz, 16 cores, 16 MB sliced L2)."""

    return SystemConfig().validate()


def table5_system_with_l2(l2_mib: int) -> SystemConfig:
    """Table 5 system with a different L2 capacity (Fig 9 sweeps 16/32/64 MB)."""

    return table5_system().with_l2_size(l2_mib * MIB)


@register_system(
    "table5-32core",
    description="Table 5 scaled out: 32 cores, 32 MB L2 in 16 slices",
)
def table5_32core_system() -> SystemConfig:
    """A scaled-out Table 5 variant: 2x cores, 2x L2 capacity, 2x slices.

    Doubling capacity and slice count together keeps the per-slice geometry
    (sets, MSHR entries, queue depths) identical to the paper's system, so the
    per-slice contention mechanisms stay comparable while the core:slice ratio
    is preserved.
    """

    base = table5_system()
    system = replace(
        base,
        core=replace(base.core, num_cores=32),
        l2=replace(base.l2, size_bytes=32 * MIB, num_slices=16),
        kv_budget_tokens=32768,
    )
    return system.validate()


@register_system(
    "table5-8core",
    description="Table 5 scaled down: 8 cores, 8 MB L2 in 4 slices",
)
def table5_8core_system() -> SystemConfig:
    """A scaled-down Table 5 variant: half the cores, L2 capacity and slices.

    The per-slice geometry (sets, MSHR entries, queue depths) and the
    core:slice ratio match the paper's system, so contention behaviour stays
    comparable.  Useful as the weak member of a heterogeneous serving fleet
    (``repro.cluster`` mixes system presets across replicas).
    """

    base = table5_system()
    system = replace(
        base,
        core=replace(base.core, num_cores=8),
        l2=replace(base.l2, size_bytes=8 * MIB, num_slices=4),
        kv_budget_tokens=8192,
    )
    return system.validate()


# ---------------------------------------------------------------------------------
# Workload presets (§6.2.2)
# ---------------------------------------------------------------------------------


@register_workload(
    "llama3-70b",
    aliases=("llama3-70b-decode",),
    description="Llama3-70B decode Logit: H=8, G=8, D=128",
)
def llama3_70b_logit(seq_len: int = 8192) -> WorkloadConfig:
    """Logit operator of Llama3-70B decode: H=8, G=8, D=128."""

    return WorkloadConfig(
        name="llama3-70b",
        shape=GQAShape(num_kv_heads=8, group_size=8, head_dim=128, seq_len=seq_len),
        operator=OperatorKind.LOGIT,
    ).validate()


@register_workload(
    "llama3-405b",
    aliases=("llama3-405b-decode",),
    description="Llama3-405B decode Logit: H=8, G=16, D=128",
)
def llama3_405b_logit(seq_len: int = 8192) -> WorkloadConfig:
    """Logit operator of Llama3-405B decode: H=8, G=16, D=128."""

    return WorkloadConfig(
        name="llama3-405b",
        shape=GQAShape(num_kv_heads=8, group_size=16, head_dim=128, seq_len=seq_len),
        operator=OperatorKind.LOGIT,
    ).validate()


@register_workload(
    "llama3-70b-attend", description="Llama3-70B decode Attend (AttScore @ V)"
)
def llama3_70b_attend(seq_len: int = 8192) -> WorkloadConfig:
    """Attend operator (AttScore @ V) of Llama3-70B decode."""

    return WorkloadConfig(
        name="llama3-70b-attend",
        shape=GQAShape(num_kv_heads=8, group_size=8, head_dim=128, seq_len=seq_len),
        operator=OperatorKind.ATTEND,
    ).validate()


@register_workload(
    "llama3-405b-attend", description="Llama3-405B decode Attend (AttScore @ V)"
)
def llama3_405b_attend(seq_len: int = 8192) -> WorkloadConfig:
    """Attend operator (AttScore @ V) of Llama3-405B decode."""

    return WorkloadConfig(
        name="llama3-405b-attend",
        shape=GQAShape(num_kv_heads=8, group_size=16, head_dim=128, seq_len=seq_len),
        operator=OperatorKind.ATTEND,
    ).validate()


#: Sequence lengths of Fig 7 (the miss-handling-throughput-bound regime).
FIG7_SEQ_LENS = (4096, 8192, 16384)

#: Sequence length and L2 sizes of Fig 9 (the cache-capacity-bound regime).
FIG9_SEQ_LEN = 32768
FIG9_L2_MIB = (16, 32, 64)


# ---------------------------------------------------------------------------------
# Policy presets
# ---------------------------------------------------------------------------------


@register_policy(
    "unopt",
    aliases=("unoptimized",),
    description="No throttling, FCFS arbitration (the paper's baseline)",
)
def unoptimized() -> PolicyConfig:
    """No throttling, FCFS arbitration -- the paper's normalisation baseline."""

    return PolicyConfig().validate()


@register_policy("dyncta", description="DYNCTA throttling baseline (PACT 2013)")
def dyncta() -> PolicyConfig:
    return PolicyConfig(throttle=ThrottleKind.DYNCTA).validate()


@register_policy("lcs", description="LCS throttling baseline (HPCA 2014)")
def lcs() -> PolicyConfig:
    return PolicyConfig(throttle=ThrottleKind.LCS).validate()


@register_policy("dynmg", description="Two-level dynamic multi-gear throttling (this paper)")
def dynmg() -> PolicyConfig:
    """Two-level dynamic multi-gear throttling (the paper's throttling policy)."""

    return PolicyConfig(throttle=ThrottleKind.DYNMG).validate()


@register_policy("cobrra", description="COBRRA arbitration baseline (TECS 2024)")
def cobrra(throttle: ThrottleKind = ThrottleKind.NONE) -> PolicyConfig:
    return PolicyConfig(throttle=throttle, arbitration=ArbitrationKind.COBRRA).validate()


@register_policy(
    "dynmg+cobrra", description="COBRRA arbitration on top of dynmg throttling"
)
def dynmg_cobrra() -> PolicyConfig:
    return cobrra(ThrottleKind.DYNMG)


@register_policy("dynmg+B", description='"B" balanced arbitration on top of dynmg')
def balanced(throttle: ThrottleKind = ThrottleKind.DYNMG) -> PolicyConfig:
    """"B" arbitration; by default on top of dynmg as in Fig 7(b)&(e)."""

    return PolicyConfig(throttle=throttle, arbitration=ArbitrationKind.BALANCED).validate()


@register_policy("dynmg+MA", description='"MA" MSHR-aware arbitration on top of dynmg')
def mshr_aware(throttle: ThrottleKind = ThrottleKind.DYNMG) -> PolicyConfig:
    """"MA" arbitration on top of dynmg."""

    return PolicyConfig(
        throttle=throttle, arbitration=ArbitrationKind.MSHR_AWARE
    ).validate()


@register_policy(
    "dynmg+BMA",
    description='"BMA" balanced MSHR-aware arbitration on dynmg (the paper\'s final policy)',
)
def bma(throttle: ThrottleKind = ThrottleKind.DYNMG) -> PolicyConfig:
    """"BMA" -- the paper's final policy (dynmg + balanced MSHR-aware arbitration)."""

    return PolicyConfig(
        throttle=throttle, arbitration=ArbitrationKind.BALANCED_MSHR_AWARE
    ).validate()


# -- compositional labels ----------------------------------------------------------
# Any "+"-joined combination of one throttle and one arbitration component is a
# valid policy label (e.g. "lcs+MA"); the registry falls back to this parser
# when a label is not registered verbatim.

_THROTTLE_COMPONENTS = {
    "unopt": ThrottleKind.NONE,
    "unoptimized": ThrottleKind.NONE,
    "dyncta": ThrottleKind.DYNCTA,
    "lcs": ThrottleKind.LCS,
    "dynmg": ThrottleKind.DYNMG,
}
_ARBITRATION_COMPONENTS = {
    "": ArbitrationKind.FCFS,
    "fcfs": ArbitrationKind.FCFS,
    "b": ArbitrationKind.BALANCED,
    "ma": ArbitrationKind.MSHR_AWARE,
    "bma": ArbitrationKind.BALANCED_MSHR_AWARE,
    "cobrra": ArbitrationKind.COBRRA,
}


def _compose_policy_label(label: str) -> PolicyConfig:
    """Compose a PolicyConfig from ``"throttle+arbitration"`` components."""

    throttle = ThrottleKind.NONE
    arbitration = ArbitrationKind.FCFS
    for part in (p.strip().lower() for p in label.split("+")):
        if part in _THROTTLE_COMPONENTS:
            throttle = _THROTTLE_COMPONENTS[part]
        elif part in _ARBITRATION_COMPONENTS:
            arbitration = _ARBITRATION_COMPONENTS[part]
        else:
            raise KeyError(part)
    return PolicyConfig(throttle=throttle, arbitration=arbitration).validate()


def _policy_fallback(label: str):
    """Registry fallback: compose eagerly (so unknown components raise here),
    then hand back a zero-argument builder matching the registered entries."""

    policy = _compose_policy_label(label)
    return lambda: policy


POLICIES.fallback = _policy_fallback


def policy_by_label(label: str) -> PolicyConfig:
    """Build a policy from a paper-style label, e.g. ``"dynmg+BMA"``.

    Kept as the historical name for :func:`repro.registry.resolve_policy`.
    """

    return POLICIES.get(label)()
