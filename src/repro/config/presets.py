"""Named presets matching the paper's experimental setup (Table 5, §6.2)."""

from __future__ import annotations

from repro.config.policies import ArbitrationKind, PolicyConfig, ThrottleKind
from repro.config.system import MIB, SystemConfig
from repro.config.workload import GQAShape, OperatorKind, WorkloadConfig

# ---------------------------------------------------------------------------------
# Hardware presets
# ---------------------------------------------------------------------------------


def table5_system() -> SystemConfig:
    """The simulated system of Table 5 (1.96 GHz, 16 cores, 16 MB sliced L2)."""

    return SystemConfig().validate()


def table5_system_with_l2(l2_mib: int) -> SystemConfig:
    """Table 5 system with a different L2 capacity (Fig 9 sweeps 16/32/64 MB)."""

    return table5_system().with_l2_size(l2_mib * MIB)


# ---------------------------------------------------------------------------------
# Workload presets (§6.2.2)
# ---------------------------------------------------------------------------------


def llama3_70b_logit(seq_len: int = 8192) -> WorkloadConfig:
    """Logit operator of Llama3-70B decode: H=8, G=8, D=128."""

    return WorkloadConfig(
        name="llama3-70b",
        shape=GQAShape(num_kv_heads=8, group_size=8, head_dim=128, seq_len=seq_len),
        operator=OperatorKind.LOGIT,
    ).validate()


def llama3_405b_logit(seq_len: int = 8192) -> WorkloadConfig:
    """Logit operator of Llama3-405B decode: H=8, G=16, D=128."""

    return WorkloadConfig(
        name="llama3-405b",
        shape=GQAShape(num_kv_heads=8, group_size=16, head_dim=128, seq_len=seq_len),
        operator=OperatorKind.LOGIT,
    ).validate()


def llama3_70b_attend(seq_len: int = 8192) -> WorkloadConfig:
    """Attend operator (AttScore @ V) of Llama3-70B decode."""

    return WorkloadConfig(
        name="llama3-70b-attend",
        shape=GQAShape(num_kv_heads=8, group_size=8, head_dim=128, seq_len=seq_len),
        operator=OperatorKind.ATTEND,
    ).validate()


PAPER_WORKLOADS = {
    "llama3-70b": llama3_70b_logit,
    "llama3-405b": llama3_405b_logit,
}

#: Sequence lengths of Fig 7 (the miss-handling-throughput-bound regime).
FIG7_SEQ_LENS = (4096, 8192, 16384)

#: Sequence length and L2 sizes of Fig 9 (the cache-capacity-bound regime).
FIG9_SEQ_LEN = 32768
FIG9_L2_MIB = (16, 32, 64)


# ---------------------------------------------------------------------------------
# Policy presets
# ---------------------------------------------------------------------------------


def unoptimized() -> PolicyConfig:
    """No throttling, FCFS arbitration -- the paper's normalisation baseline."""

    return PolicyConfig().validate()


def dyncta() -> PolicyConfig:
    return PolicyConfig(throttle=ThrottleKind.DYNCTA).validate()


def lcs() -> PolicyConfig:
    return PolicyConfig(throttle=ThrottleKind.LCS).validate()


def dynmg() -> PolicyConfig:
    """Two-level dynamic multi-gear throttling (the paper's throttling policy)."""

    return PolicyConfig(throttle=ThrottleKind.DYNMG).validate()


def cobrra(throttle: ThrottleKind = ThrottleKind.NONE) -> PolicyConfig:
    return PolicyConfig(throttle=throttle, arbitration=ArbitrationKind.COBRRA).validate()


def balanced(throttle: ThrottleKind = ThrottleKind.DYNMG) -> PolicyConfig:
    """"B" arbitration; by default on top of dynmg as in Fig 7(b)&(e)."""

    return PolicyConfig(throttle=throttle, arbitration=ArbitrationKind.BALANCED).validate()


def mshr_aware(throttle: ThrottleKind = ThrottleKind.DYNMG) -> PolicyConfig:
    """"MA" arbitration on top of dynmg."""

    return PolicyConfig(
        throttle=throttle, arbitration=ArbitrationKind.MSHR_AWARE
    ).validate()


def bma(throttle: ThrottleKind = ThrottleKind.DYNMG) -> PolicyConfig:
    """"BMA" -- the paper's final policy (dynmg + balanced MSHR-aware arbitration)."""

    return PolicyConfig(
        throttle=throttle, arbitration=ArbitrationKind.BALANCED_MSHR_AWARE
    ).validate()


def policy_by_label(label: str) -> PolicyConfig:
    """Build a policy from a paper-style label, e.g. ``"dynmg+BMA"``."""

    throttle_map = {
        "unopt": ThrottleKind.NONE,
        "unoptimized": ThrottleKind.NONE,
        "dyncta": ThrottleKind.DYNCTA,
        "lcs": ThrottleKind.LCS,
        "dynmg": ThrottleKind.DYNMG,
    }
    arb_map = {
        "": ArbitrationKind.FCFS,
        "fcfs": ArbitrationKind.FCFS,
        "b": ArbitrationKind.BALANCED,
        "ma": ArbitrationKind.MSHR_AWARE,
        "bma": ArbitrationKind.BALANCED_MSHR_AWARE,
        "cobrra": ArbitrationKind.COBRRA,
    }
    parts = [p.strip().lower() for p in label.split("+")]
    throttle = ThrottleKind.NONE
    arbitration = ArbitrationKind.FCFS
    for part in parts:
        if part in throttle_map:
            throttle = throttle_map[part]
        elif part in arb_map:
            arbitration = arb_map[part]
        else:
            raise ValueError(f"unknown policy component {part!r} in label {label!r}")
    return PolicyConfig(throttle=throttle, arbitration=arbitration).validate()
