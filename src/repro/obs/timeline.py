"""ASCII timelines for stored telemetry (``llamcat timeline``).

Renders a :class:`~repro.obs.telemetry.TelemetrySeries` as sparkline rows --
one row per metric, one glyph per (resampled) interval -- so a run's
utilization and queueing behaviour can be eyeballed straight from the JSONL
result store without leaving the terminal.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.obs.telemetry import TelemetrySeries

#: Eight-level block glyphs, lowest to highest.
BLOCKS = "▁▂▃▄▅▆▇█"

#: Default terminal width budget for the sparkline itself.
DEFAULT_WIDTH = 72

#: Metrics rendered by default, with row labels.
DEFAULT_METRICS = (
    ("utilization", "util"),
    ("queue_depth", "queue"),
    ("running", "batch"),
    ("tokens_per_s", "tok/s"),
)


def resample(values: list[float], width: int) -> list[float]:
    """Reduce ``values`` to at most ``width`` points by averaging runs.

    Keeps the series' shape (each output point is the mean of a contiguous
    chunk) so long runs still fit one terminal row.
    """

    if width <= 0:
        raise ConfigError(f"timeline width must be positive, got {width}")
    n = len(values)
    if n <= width:
        return list(values)
    out = []
    for k in range(width):
        lo = k * n // width
        hi = max(lo + 1, (k + 1) * n // width)
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def sparkline(values: list[float], lo: float | None = None, hi: float | None = None) -> str:
    """Map ``values`` onto :data:`BLOCKS`, scaled to [lo, hi].

    Bounds default to the data's own min/max; a flat series renders as the
    lowest glyph.
    """

    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return BLOCKS[0] * len(values)
    top = len(BLOCKS) - 1
    return "".join(
        BLOCKS[min(top, max(0, int((v - lo) / span * top + 0.5)))] for v in values
    )


def render_timeline(
    series: TelemetrySeries,
    metrics: tuple[tuple[str, str], ...] = DEFAULT_METRICS,
    width: int = DEFAULT_WIDTH,
) -> str:
    """Render a telemetry series as labelled sparkline rows.

    Each row shows the metric's sparkline plus its min/mean/max; utilization
    rows are pinned to the [0, 1] scale so full-width blocks always mean a
    saturated replica.
    """

    if not series.samples:
        return "timeline: series holds no samples"
    header = (
        f"timeline: {series.num_samples} samples x {series.interval_s:g}s"
        f" from t={series.t0_s:g}s"
        f" ({series.num_replicas} replica{'s' if series.num_replicas != 1 else ''})"
    )
    label_width = max(len(label) for _, label in metrics)
    lines = [header]
    for metric, label in metrics:
        values = [float(v) for v in series.series(metric)]
        points = resample(values, width)
        pinned = metric == "utilization" or metric.startswith("util:")
        row = sparkline(points, lo=0.0 if pinned else None, hi=1.0 if pinned else None)
        mean = sum(values) / len(values)
        lines.append(
            f"{label:>{label_width}} |{row}|"
            f" min {min(values):g} mean {mean:.3g} max {max(values):g}"
        )
    return "\n".join(lines)
