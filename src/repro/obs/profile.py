"""Wall-clock profiling of the simulator's real hot paths.

Trace and telemetry measure *simulated* time; :class:`Profiler` measures the
*wall clock* the simulator itself burns -- step-cost table builds, sweep point
execution, serialization -- so a slow sweep can be blamed on the right stage.
Sections nest freely and repeat; each named section accumulates total seconds
and a call count.

Wall-clock numbers are inherently non-deterministic, so they are kept out of
metrics objects and golden fixtures: simulators expose them via a ``profile``
attribute and the CLI prints them only at debug verbosity.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(slots=True)
class Profiler:
    """Accumulate wall-clock seconds and call counts per named section."""

    seconds: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str):
        """Time the enclosed block under ``name`` (accumulates on re-entry)."""

        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, wall_s: float, calls: int = 1) -> None:
        """Accumulate ``wall_s`` seconds (and ``calls`` invocations) of ``name``."""

        self.seconds[name] = self.seconds.get(name, 0.0) + wall_s
        self.calls[name] = self.calls.get(name, 0) + calls

    def count(self, name: str, n: int = 1) -> None:
        """Count an occurrence of ``name`` without attributing wall time."""

        self.calls[name] = self.calls.get(name, 0) + n
        self.seconds.setdefault(name, 0.0)

    def merge(self, other: dict) -> None:
        """Fold another profile dict (as produced by :meth:`as_dict`) in."""

        for name, entry in other.items():
            self.add(name, entry.get("wall_s", 0.0), entry.get("calls", 0))

    def as_dict(self) -> dict:
        """The profile as ``{section: {"wall_s": ..., "calls": ...}}``."""

        return {
            name: {"wall_s": self.seconds[name], "calls": self.calls.get(name, 0)}
            for name in sorted(self.seconds)
        }

    def summary(self) -> str:
        """Human-readable one-line-per-section summary, slowest first."""

        if not self.seconds:
            return "profile: no sections recorded"
        width = max(len(name) for name in self.seconds)
        lines = ["profile (wall clock):"]
        for name in sorted(self.seconds, key=self.seconds.get, reverse=True):
            lines.append(
                f"  {name:<{width}}  {self.seconds[name] * 1e3:10.3f} ms"
                f"  x{self.calls.get(name, 0)}"
            )
        return "\n".join(lines)
