"""Event tracing: per-request lifecycle and per-iteration scheduler decisions.

The serving stack reports *aggregates* (p95 TTFT, utilization, imbalance);
tracing records *why* they came out that way.  A :class:`Tracer` receives the
raw timeline of a run -- request lifecycle spans (queued -> prefill -> decode
-> complete, plus KV-transfer handoffs on disaggregated fleets) and one event
per scheduler iteration carrying the :class:`~repro.serve.schedpolicy.StepPlan`
composition, batch shape and cycle cost -- and the simulators stay oblivious
to where those events go.

Two implementations exist:

* :class:`Tracer` itself is the null default: every hook is a no-op and
  ``enabled`` is False, so the simulators' emission sites are skipped entirely
  (``if tracer.enabled:``) and a run without tracing stays bit-for-bit -- and
  allocation-for-allocation -- identical to a pre-tracing run.
* :class:`ChromeTracer` records Chrome ``trace_event`` JSON, the format
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load directly.

Timestamps are *simulated* seconds (converted to the format's microseconds),
never wall clock, so a seeded run emits a byte-identical trace every time --
which is what lets CI pin trace output with a plain ``cmp``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.errors import ConfigError

#: Event categories, used by trace viewers to filter tracks.
CAT_REQUEST = "request"
CAT_STEP = "scheduler"
CAT_HANDOFF = "handoff"

#: trace_event timestamps are microseconds.
_US_PER_S = 1e6

#: Phase codes of the trace_event format that this tracer emits.
_PHASES = {"X", "i", "M"}


class Tracer:
    """The tracing interface -- and, as-is, the zero-overhead null tracer.

    ``complete`` records a duration span ``[start_s, end_s]`` and ``instant``
    a point event; ``pid``/``tid`` place events on Perfetto's process/thread
    tracks (the serving stack uses pids for replicas and one extra pid for the
    request lanes, tids for request ids).  ``name_process``/``name_thread``
    attach human-readable track labels.  Hot loops must guard emission with
    ``if tracer.enabled:`` so a disabled run never builds args dicts.
    """

    enabled = False

    def name_process(self, pid: int, name: str) -> None:
        pass

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        pass

    def complete(
        self,
        name: str,
        cat: str,
        pid: int,
        tid: int,
        start_s: float,
        end_s: float,
        args: dict | None = None,
    ) -> None:
        pass

    def instant(
        self,
        name: str,
        cat: str,
        pid: int,
        tid: int,
        ts_s: float,
        args: dict | None = None,
    ) -> None:
        pass

    def write(self, path) -> None:
        pass


#: The shared null tracer: simulators default to this instance.
NULL_TRACER = Tracer()


class ChromeTracer(Tracer):
    """Record events as Chrome ``trace_event`` JSON (Perfetto-loadable).

    Events accumulate in emission order; :meth:`write` serializes them with
    sorted keys and canonical separators, so a deterministic simulation
    produces a byte-identical trace file on every run.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._process_names: dict[int, str] = {}
        self._thread_names: dict[tuple[int, int], str] = {}

    def __len__(self) -> int:
        return len(self.events)

    def name_process(self, pid: int, name: str) -> None:
        self._process_names[pid] = name

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        self._thread_names[(pid, tid)] = name

    def complete(
        self,
        name: str,
        cat: str,
        pid: int,
        tid: int,
        start_s: float,
        end_s: float,
        args: dict | None = None,
    ) -> None:
        if end_s < start_s:
            raise ConfigError(
                f"trace span {name!r} must not end before it starts, got "
                f"[{start_s}, {end_s}]"
            )
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start_s * _US_PER_S,
            "dur": (end_s - start_s) * _US_PER_S,
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(
        self,
        name: str,
        cat: str,
        pid: int,
        tid: int,
        ts_s: float,
        args: dict | None = None,
    ) -> None:
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": ts_s * _US_PER_S,
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def trace_dict(self) -> dict:
        """The complete trace as JSON-able data (metadata events first)."""

        metadata: list[dict] = []
        for pid in sorted(self._process_names):
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": self._process_names[pid]},
                }
            )
        for pid, tid in sorted(self._thread_names):
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": self._thread_names[(pid, tid)]},
                }
            )
        return {
            "displayTimeUnit": "ms",
            "traceEvents": metadata + self.events,
        }

    def to_json(self) -> str:
        return json.dumps(self.trace_dict(), sort_keys=True, separators=(",", ":"))

    def write(self, path) -> None:
        """Serialize the trace to ``path`` (canonical JSON + trailing newline)."""

        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")


def trace_request(tracer: Tracer, record, pid: int) -> None:
    """Emit one completed request's lifecycle spans onto its own track.

    ``record`` is any object with the :class:`~repro.serve.metrics.
    RequestMetrics` timestamp fields; each request occupies ``tid =
    request_id`` under the ``pid`` request lane, giving Perfetto one swimlane
    per request: queued (arrival -> admission), prefill (admission -> last
    prompt token, when the run models prefill), decode (to the final token)
    and a ``complete`` instant.
    """

    tid = record.request_id
    tracer.complete(
        "queued", CAT_REQUEST, pid, tid, record.arrival_s, record.admitted_s
    )
    decode_start_s = record.admitted_s
    if record.prefill_end_s is not None:
        tracer.complete(
            "prefill",
            CAT_REQUEST,
            pid,
            tid,
            record.admitted_s,
            record.prefill_end_s,
            args={"prompt_tokens": record.prompt_tokens},
        )
        decode_start_s = record.prefill_end_s
    tracer.complete(
        "decode",
        CAT_REQUEST,
        pid,
        tid,
        decode_start_s,
        record.finish_s,
        args={"output_tokens": record.output_tokens},
    )
    tracer.instant(
        "complete",
        CAT_REQUEST,
        pid,
        tid,
        record.finish_s,
        args={"latency_ms": (record.finish_s - record.arrival_s) * 1e3},
    )


def validate_trace(data) -> int:
    """Validate Chrome ``trace_event`` JSON structure; return the event count.

    Checks the shape this package emits (and Perfetto requires): a top-level
    ``traceEvents`` list whose entries carry ``name``/``ph``/``ts``/``pid``/
    ``tid``, with a ``dur`` on every complete ("X") event.  Raises
    :class:`~repro.common.errors.ConfigError` on the first malformed event --
    used by tests and the CI trace-smoke step.
    """

    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ConfigError("a trace must be an object with a 'traceEvents' list")
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ConfigError(f"traceEvents must be a list, got {type(events).__name__}")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ConfigError(f"traceEvents[{i}] must be an object")
        missing = {"name", "ph", "ts", "pid", "tid"} - event.keys()
        if missing:
            raise ConfigError(
                f"traceEvents[{i}] ({event.get('name', '?')!r}) is missing "
                f"{sorted(missing)}"
            )
        if event["ph"] not in _PHASES:
            raise ConfigError(
                f"traceEvents[{i}] has unknown phase {event['ph']!r} "
                f"(expected one of {sorted(_PHASES)})"
            )
        if event["ph"] == "X" and "dur" not in event:
            raise ConfigError(
                f"traceEvents[{i}] ({event['name']!r}) is a complete event "
                f"without a 'dur'"
            )
        if event["ph"] == "X" and event["dur"] < 0:
            raise ConfigError(
                f"traceEvents[{i}] ({event['name']!r}) has negative duration"
            )
    return len(events)
