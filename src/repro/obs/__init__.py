"""Observability for the serving stack: tracing, telemetry, and profiling.

Three orthogonal instruments, all zero-overhead when off:

* :mod:`repro.obs.tracer` -- per-request lifecycle spans and per-iteration
  scheduler decisions as Chrome ``trace_event`` JSON (Perfetto-loadable).
* :mod:`repro.obs.telemetry` -- fixed-cadence time series (queue depth, batch
  occupancy, per-replica utilization, tokens/s) stored next to metrics.
* :mod:`repro.obs.profile` -- wall-clock profiling of the simulator's own hot
  paths (step-cost builds, sweep points), kept out of deterministic outputs.
* :mod:`repro.obs.metrics` -- mergeable metric primitives: log-bucketed
  quantile histograms with a guaranteed error bound, counters and gauges
  (the fixed-memory alternative to exact per-request percentile lists).

:mod:`repro.obs.timeline` renders stored telemetry as ASCII sparklines for
``llamcat timeline``.
"""

from repro.obs.metrics import DEFAULT_GROWTH, Counter, Gauge, Histogram
from repro.obs.profile import Profiler
from repro.obs.telemetry import (
    MAX_TELEMETRY_SAMPLES,
    StepEvent,
    TelemetryRecorder,
    TelemetrySample,
    TelemetrySeries,
)
from repro.obs.timeline import BLOCKS, render_timeline, resample, sparkline
from repro.obs.tracer import (
    CAT_HANDOFF,
    CAT_REQUEST,
    CAT_STEP,
    NULL_TRACER,
    ChromeTracer,
    Tracer,
    trace_request,
    validate_trace,
)

__all__ = [
    "BLOCKS",
    "CAT_HANDOFF",
    "CAT_REQUEST",
    "CAT_STEP",
    "ChromeTracer",
    "Counter",
    "DEFAULT_GROWTH",
    "Gauge",
    "Histogram",
    "MAX_TELEMETRY_SAMPLES",
    "NULL_TRACER",
    "Profiler",
    "StepEvent",
    "TelemetryRecorder",
    "TelemetrySample",
    "TelemetrySeries",
    "Tracer",
    "render_timeline",
    "resample",
    "sparkline",
    "trace_request",
    "validate_trace",
]
