"""Mergeable metric primitives: log-bucketed histograms, counters, gauges.

The exact-list percentile path in :mod:`repro.serve.metrics` and
:mod:`repro.cluster.metrics` keeps every per-request sample alive and re-sorts
it on each query -- fine for thousands of requests, hopeless for the
million-request traces the analytical fast path is meant to unlock.  This
module provides the fixed-memory alternative: a :class:`Histogram` with
deterministic, logarithmically spaced bucket boundaries that can be

* **recorded into** in O(1) per sample with no per-sample storage,
* **merged** exactly (bucket-count addition; merging per-replica histograms is
  bit-identical to recording the concatenated streams), and
* **queried** for any quantile with a guaranteed relative error bound.

Error bound
-----------
Bucket ``k`` covers ``[growth**k, growth**(k + 1))`` and is represented by its
geometric midpoint ``growth**(k + 0.5)``, so any recorded value is within a
factor ``sqrt(growth)`` of its representative.  :meth:`Histogram.quantile`
interpolates between representatives with exactly the convention of
:func:`repro.common.mathutils.percentile` and clamps to the exact, separately
tracked min/max, so for every quantile point

``|sketch - exact| <= (sqrt(growth) - 1) * exact``

where *exact* is the interpolated percentile of the recorded samples.  The
bound is exposed as :attr:`Histogram.relative_error_bound` and asserted by the
sketch-vs-exact tests in ``tests/serve`` / ``tests/cluster``.

Determinism
-----------
Bucket indices are pure functions of (value, growth); serialization keeps the
sparse bucket table exactly (``to_dict``/``from_dict`` round-trips every
count), so histograms recorded from a seeded run are byte-stable in the JSONL
store and across merge orders.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import ConfigError

#: Default bucket growth factor: ~2.47% worst-case quantile error
#: (``sqrt(1.05) - 1``), ~470 buckets per 10 decades of dynamic range.
DEFAULT_GROWTH = 1.05


@dataclass(slots=True)
class Histogram:
    """Fixed-memory quantile sketch over positive values (zeros allowed).

    ``growth`` sets the bucket-boundary ratio and thereby the error bound;
    histograms only merge with identically configured peers.
    """

    growth: float = DEFAULT_GROWTH
    #: Sparse bucket table: index -> count, where bucket ``k`` covers
    #: ``[growth**k, growth**(k+1))``.
    buckets: dict[int, int] = field(default_factory=dict)
    #: Zero-valued samples, tracked outside the log buckets.
    zero_count: int = 0
    #: Exact running aggregates (no bucketing error).
    total: float = 0.0
    min_value: float | None = None
    max_value: float | None = None

    def __post_init__(self) -> None:
        if self.growth <= 1.0:
            raise ConfigError(
                f"histogram growth must be > 1, got {self.growth}"
            )

    # -- recording ---------------------------------------------------------------------
    def bucket_index(self, value: float) -> int:
        """The deterministic bucket of a positive ``value``."""

        return math.floor(math.log(value) / math.log(self.growth))

    def representative(self, index: int) -> float:
        """Bucket ``index``'s geometric midpoint (its reported value)."""

        return self.growth ** (index + 0.5)

    def record(self, value: float, count: int = 1) -> None:
        """Add ``count`` observations of ``value`` (non-negative, finite)."""

        if count <= 0:
            raise ConfigError(f"histogram count must be positive, got {count}")
        if not math.isfinite(value) or value < 0:
            raise ConfigError(
                f"histogram values must be finite and >= 0, got {value}"
            )
        if value == 0.0:
            self.zero_count += count
        else:
            index = self.bucket_index(value)
            self.buckets[index] = self.buckets.get(index, 0) + count
        self.total += value * count
        self.min_value = value if self.min_value is None else min(self.min_value, value)
        self.max_value = value if self.max_value is None else max(self.max_value, value)

    def record_all(self, values) -> None:
        for value in values:
            self.record(value)

    # -- merging -----------------------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram in place (and return self).

        Merging is exact -- bucket counts add -- so any merge order of any
        partition of a sample stream yields the same histogram.
        """

        if other.growth != self.growth:
            raise ConfigError(
                f"cannot merge histograms with growth {other.growth} into "
                f"growth {self.growth}"
            )
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        self.zero_count += other.zero_count
        self.total += other.total
        if other.min_value is not None:
            self.min_value = (
                other.min_value
                if self.min_value is None
                else min(self.min_value, other.min_value)
            )
        if other.max_value is not None:
            self.max_value = (
                other.max_value
                if self.max_value is None
                else max(self.max_value, other.max_value)
            )
        return self

    # -- queries -----------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self.zero_count + sum(self.buckets.values())

    @property
    def mean(self) -> float:
        n = self.count
        return self.total / n if n else 0.0

    @property
    def relative_error_bound(self) -> float:
        """Worst-case relative quantile error: ``sqrt(growth) - 1``."""

        return math.sqrt(self.growth) - 1.0

    def _ordered(self) -> list[tuple[float, int]]:
        """(representative, count) pairs in ascending value order."""

        pairs: list[tuple[float, int]] = []
        if self.zero_count:
            pairs.append((0.0, self.zero_count))
        for index in sorted(self.buckets):
            pairs.append((self.representative(index), self.buckets[index]))
        return pairs

    def quantiles(self, points) -> list[float]:
        """Interpolated quantiles at each point in [0, 100].

        Uses the exact interpolation convention of
        :func:`repro.common.mathutils.percentiles` over bucket
        representatives, clamped to the tracked min/max, so the result is
        within ``relative_error_bound`` of the exact-list percentile.
        """

        n = self.count
        if n == 0:
            raise ConfigError("quantile of an empty histogram")
        ordered = self._ordered()
        cumulative: list[int] = []
        running = 0
        for _, bucket_count in ordered:
            running += bucket_count
            cumulative.append(running)

        def value_at(position: int) -> float:
            # The position-th (0-based) sample in ascending order.
            lo, hi = 0, len(cumulative) - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if cumulative[mid] > position:
                    hi = mid
                else:
                    lo = mid + 1
            return ordered[lo][0]

        out: list[float] = []
        for p in points:
            if not 0.0 <= p <= 100.0:
                raise ConfigError(f"quantile point out of range: {p}")
            if n == 1:
                rank_lo = rank_hi = 0
                frac = 0.0
            else:
                rank = (p / 100.0) * (n - 1)
                rank_lo = math.floor(rank)
                rank_hi = math.ceil(rank)
                frac = rank - rank_lo
            value = value_at(rank_lo) * (1 - frac) + value_at(rank_hi) * frac
            # min/max are exact, and the exact percentile lies inside them:
            # clamping can only shrink the sketch error.
            value = max(self.min_value or 0.0, min(self.max_value or 0.0, value))
            out.append(value)
        return out

    def quantile(self, point: float) -> float:
        """Interpolated quantile at ``point`` in [0, 100]."""

        return self.quantiles((point,))[0]

    # -- serialization -----------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready mapping; round-trips exactly via :meth:`from_dict`."""

        return {
            "growth": self.growth,
            "buckets": {str(k): self.buckets[k] for k in sorted(self.buckets)},
            "zero_count": self.zero_count,
            "total": self.total,
            "min_value": self.min_value,
            "max_value": self.max_value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        return cls(
            growth=data["growth"],
            buckets={int(k): v for k, v in data["buckets"].items()},
            zero_count=data["zero_count"],
            total=data["total"],
            min_value=data["min_value"],
            max_value=data["max_value"],
        )

    @classmethod
    def of(cls, values, growth: float = DEFAULT_GROWTH) -> "Histogram":
        """A histogram recording every value in ``values``."""

        hist = cls(growth=growth)
        hist.record_all(values)
        return hist


@dataclass(slots=True)
class Counter:
    """A monotonically increasing count; merges by addition."""

    value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ConfigError(f"counter increments must be >= 0, got {n}")
        self.value += n

    def merge(self, other: "Counter") -> "Counter":
        self.value += other.value
        return self

    def to_dict(self) -> dict:
        return {"value": self.value}

    @classmethod
    def from_dict(cls, data: dict) -> "Counter":
        return cls(value=data["value"])


@dataclass(slots=True)
class Gauge:
    """A sampled level (queue depth, utilization): last value plus min/max.

    Merging keeps the joint min/max and the *other* gauge's last value, so a
    deterministic merge order (replica 0..N-1) yields a deterministic result.
    """

    last: float = 0.0
    min_value: float | None = None
    max_value: float | None = None

    def set(self, value: float) -> None:
        self.last = value
        self.min_value = value if self.min_value is None else min(self.min_value, value)
        self.max_value = value if self.max_value is None else max(self.max_value, value)

    def merge(self, other: "Gauge") -> "Gauge":
        if other.min_value is not None:
            self.min_value = (
                other.min_value
                if self.min_value is None
                else min(self.min_value, other.min_value)
            )
        if other.max_value is not None:
            self.max_value = (
                other.max_value
                if self.max_value is None
                else max(self.max_value, other.max_value)
            )
        self.last = other.last
        return self

    def to_dict(self) -> dict:
        return {
            "last": self.last,
            "min_value": self.min_value,
            "max_value": self.max_value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Gauge":
        return cls(
            last=data["last"],
            min_value=data["min_value"],
            max_value=data["max_value"],
        )
