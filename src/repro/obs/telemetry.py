"""Time-series telemetry: queue depth, batch occupancy, utilization, tokens/s.

End-of-run aggregates say *how well* a run did; telemetry says *when*.  A
:class:`TelemetryRecorder` collects one raw observation per scheduler
iteration (replica, step span, queue depth, batch size, tokens produced) while
a simulation runs, then :meth:`TelemetryRecorder.build` folds the raw stream
into a fixed-cadence :class:`TelemetrySeries` -- one :class:`TelemetrySample`
per interval, with per-replica busy time split exactly across interval
boundaries.  The series rides inside the run's metrics object, so it
round-trips through the JSONL result store and renders via ``llamcat
timeline`` (:mod:`repro.obs.timeline`).

Everything here is driven by *simulated* time, so a seeded run produces an
identical series every time; the sampled busy time sums exactly to the
replicas' end-of-run busy aggregates (pinned by a tolerance test), which is
what keeps the time series honest against the headline numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.mathutils import safe_div

#: Hard cap on samples per series -- protects the JSONL store from a cadence
#: far finer than the run (raise the interval instead of storing megabytes).
MAX_TELEMETRY_SAMPLES = 16_384


@dataclass(frozen=True, slots=True)
class StepEvent:
    """One raw observation: a replica's step span and the load it saw.

    ``queue_depth``/``running`` are sampled at the step's start (after
    admission); ``tokens`` counts the output tokens the step completed.  Idle
    observations are zero-width spans (``start_s == end_s``) that contribute
    load samples but no busy time.
    """

    replica: int
    start_s: float
    end_s: float
    queue_depth: int
    running: int
    tokens: int


@dataclass(frozen=True, slots=True)
class TelemetrySample:
    """Aggregated telemetry of one sampling interval.

    ``t_s`` is the interval's *end* time, ``dt_s`` its width (the final
    interval of a run may be shorter).  ``queue_depth`` and ``running`` are
    the last observed values at or before ``t_s``, summed across replicas;
    ``busy_s`` holds each replica's busy seconds within the interval.
    """

    t_s: float
    dt_s: float
    queue_depth: int
    running: int
    tokens: int
    busy_s: tuple[float, ...] = ()

    def validate(self) -> "TelemetrySample":
        if self.dt_s <= 0:
            raise ConfigError(f"sample dt_s must be positive, got {self.dt_s}")
        if any(b < 0 for b in self.busy_s):
            raise ConfigError(f"sample busy_s must be >= 0, got {self.busy_s}")
        return self

    @property
    def utilizations(self) -> tuple[float, ...]:
        """Per-replica busy fraction of this interval."""

        return tuple(min(1.0, b / self.dt_s) for b in self.busy_s)

    @property
    def utilization(self) -> float:
        """Mean busy fraction across replicas."""

        if not self.busy_s:
            return 0.0
        return sum(self.utilizations) / len(self.busy_s)

    @property
    def tokens_per_s(self) -> float:
        return safe_div(self.tokens, self.dt_s)

    def to_dict(self) -> dict:
        return {
            "t_s": self.t_s,
            "dt_s": self.dt_s,
            "queue_depth": self.queue_depth,
            "running": self.running,
            "tokens": self.tokens,
            "busy_s": list(self.busy_s),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetrySample":
        return cls(
            t_s=data["t_s"],
            dt_s=data["dt_s"],
            queue_depth=data["queue_depth"],
            running=data["running"],
            tokens=data["tokens"],
            busy_s=tuple(data.get("busy_s", ())),
        ).validate()


@dataclass(frozen=True, slots=True)
class TelemetrySeries:
    """A run's complete telemetry: fixed-cadence samples from ``t0_s`` on."""

    interval_s: float
    t0_s: float
    num_replicas: int
    samples: tuple[TelemetrySample, ...] = ()

    def validate(self) -> "TelemetrySeries":
        if self.interval_s <= 0:
            raise ConfigError(
                f"telemetry interval must be positive, got {self.interval_s}"
            )
        if self.num_replicas <= 0:
            raise ConfigError(
                f"telemetry num_replicas must be positive, got {self.num_replicas}"
            )
        for sample in self.samples:
            if len(sample.busy_s) != self.num_replicas:
                raise ConfigError(
                    f"sample at t={sample.t_s} carries {len(sample.busy_s)} "
                    f"busy entries for a {self.num_replicas}-replica series"
                )
        return self

    @property
    def num_samples(self) -> int:
        return len(self.samples)

    @property
    def duration_s(self) -> float:
        """Span covered by the samples (0.0 for an empty series)."""

        return sum(s.dt_s for s in self.samples)

    def busy_totals(self) -> tuple[float, ...]:
        """Per-replica busy seconds summed over every sample.

        Equals each replica's end-of-run ``busy_s`` aggregate exactly (up to
        float addition order) -- the invariant that keeps the sampled series
        consistent with the headline utilization numbers.
        """

        totals = [0.0] * self.num_replicas
        for sample in self.samples:
            for i, b in enumerate(sample.busy_s):
                totals[i] += b
        return tuple(totals)

    def mean_utilizations(self) -> tuple[float, ...]:
        """Per-replica busy fraction of the whole sampled span."""

        span = self.duration_s
        return tuple(safe_div(total, span) for total in self.busy_totals())

    def series(self, metric: str) -> list[float]:
        """One named metric as a list: utilization / queue_depth / running /
        tokens_per_s, or ``util:<replica>`` for a single replica's busy
        fraction."""

        if metric.startswith("util:"):
            replica = int(metric.split(":", 1)[1])
            if not 0 <= replica < self.num_replicas:
                raise ConfigError(
                    f"replica {replica} out of range for a "
                    f"{self.num_replicas}-replica series"
                )
            return [s.utilizations[replica] for s in self.samples]
        try:
            return [getattr(s, metric) for s in self.samples]
        except AttributeError:
            raise ConfigError(
                f"unknown telemetry metric {metric!r} (try utilization, "
                f"queue_depth, running, tokens_per_s, or util:<replica>)"
            ) from None

    def to_dict(self) -> dict:
        return {
            "interval_s": self.interval_s,
            "t0_s": self.t0_s,
            "num_replicas": self.num_replicas,
            "samples": [s.to_dict() for s in self.samples],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetrySeries":
        return cls(
            interval_s=data["interval_s"],
            t0_s=data["t0_s"],
            num_replicas=data["num_replicas"],
            samples=tuple(TelemetrySample.from_dict(s) for s in data["samples"]),
        ).validate()


@dataclass(slots=True)
class TelemetryRecorder:
    """Collect raw step observations during a run; bucket them afterwards.

    The simulators call :meth:`on_step` once per costed iteration and
    :meth:`observe` on load changes that consume no time (idle jumps);
    recording is append-only and allocation-light so sampling never perturbs
    the simulated timeline.
    """

    interval_s: float
    num_replicas: int = 1
    events: list[StepEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ConfigError(
                f"telemetry interval must be positive, got {self.interval_s}"
            )
        if self.num_replicas <= 0:
            raise ConfigError(
                f"telemetry num_replicas must be positive, got {self.num_replicas}"
            )

    def on_step(
        self,
        replica: int,
        start_s: float,
        end_s: float,
        queue_depth: int,
        running: int,
        tokens: int,
    ) -> None:
        """Record one costed scheduler iteration."""

        self.events.append(
            StepEvent(replica, start_s, end_s, queue_depth, running, tokens)
        )

    def observe(
        self, replica: int, t_s: float, queue_depth: int, running: int
    ) -> None:
        """Record an instantaneous load observation (no busy time)."""

        self.events.append(StepEvent(replica, t_s, t_s, queue_depth, running, 0))

    def build(self, t0_s: float, end_s: float | None = None) -> TelemetrySeries:
        """Fold the raw events into a fixed-cadence series over [t0_s, end_s].

        ``end_s`` defaults to the latest event end.  Busy time is split
        exactly across interval boundaries; tokens land in the interval their
        step finished in; queue/batch samples are the last observation per
        replica at or before each interval's end, summed across replicas.
        """

        events = sorted(self.events, key=lambda e: (e.start_s, e.replica))
        if end_s is None:
            end_s = max((e.end_s for e in events), default=t0_s)
        span = max(0.0, end_s - t0_s)
        buckets = max(1, math.ceil(span / self.interval_s - 1e-9))
        if buckets > MAX_TELEMETRY_SAMPLES:
            raise ConfigError(
                f"telemetry would produce {buckets} samples (cap "
                f"{MAX_TELEMETRY_SAMPLES}); raise the sampling interval"
            )

        busy = [[0.0] * self.num_replicas for _ in range(buckets)]
        tokens = [0] * buckets
        queue = [0] * buckets
        running = [0] * buckets

        def bucket_of(t_s: float) -> int:
            return min(buckets - 1, max(0, int((t_s - t0_s) / self.interval_s)))

        for event in events:
            if event.end_s > event.start_s:
                # Split the busy span across every interval it overlaps.
                k = bucket_of(event.start_s)
                remaining_start = event.start_s
                while remaining_start < event.end_s and k < buckets:
                    bucket_end = t0_s + (k + 1) * self.interval_s
                    chunk_end = min(event.end_s, bucket_end)
                    busy[k][event.replica] += chunk_end - remaining_start
                    remaining_start = chunk_end
                    k += 1
                if remaining_start < event.end_s:
                    # Span ran past the nominal end (clock jitter): fold the
                    # tail into the final interval so busy totals stay exact.
                    busy[buckets - 1][event.replica] += event.end_s - remaining_start
            if event.tokens:
                tokens[bucket_of(event.end_s)] += event.tokens

        # Load levels: last observation per replica at or before bucket end.
        last_queue = [0] * self.num_replicas
        last_running = [0] * self.num_replicas
        pointer = 0
        for k in range(buckets):
            bucket_end = t0_s + (k + 1) * self.interval_s
            while pointer < len(events) and events[pointer].start_s <= bucket_end:
                event = events[pointer]
                last_queue[event.replica] = event.queue_depth
                last_running[event.replica] = event.running
                pointer += 1
            queue[k] = sum(last_queue)
            running[k] = sum(last_running)

        samples = []
        for k in range(buckets):
            start = t0_s + k * self.interval_s
            t = min(end_s, start + self.interval_s)
            dt = t - start
            if dt <= 0:
                dt = self.interval_s
                t = start + dt
            samples.append(
                TelemetrySample(
                    t_s=t,
                    dt_s=dt,
                    queue_depth=queue[k],
                    running=running[k],
                    tokens=tokens[k],
                    busy_s=tuple(busy[k]),
                ).validate()
            )
        return TelemetrySeries(
            interval_s=self.interval_s,
            t0_s=t0_s,
            num_replicas=self.num_replicas,
            samples=tuple(samples),
        ).validate()
