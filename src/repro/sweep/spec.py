"""Declarative sweep specifications.

A :class:`SweepSpec` names a cartesian grid -- models x sequence lengths x
policies x L2 capacities x one scale tier -- and expands it, via
:class:`repro.api.Scenario`, into fully resolved :class:`SweepPoint` job
descriptors.  A point carries the *scaled* system, workload and policy
configurations, so it is self-contained: the executor can run it in any worker
process without re-reading presets, and its content hash
(:meth:`SweepPoint.key`) identifies the simulation independently of display
labels, which is what makes the result store resumable and deduplicating.

Model and policy names resolve through :mod:`repro.registry`, so a workload or
policy registered anywhere is immediately sweepable.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field, fields, is_dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.common.errors import ConfigError
from repro.config.policies import PolicyConfig
from repro.config.presets import FIG9_L2_MIB, FIG9_SEQ_LEN
from repro.config.scale import ScaleTier, parse_tier
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig
from repro.dataflow.constraints import DataflowConstraints
from repro.dataflow.ordering import ThreadBlockOrdering, parse_ordering
from repro.registry import WORKLOADS, resolve_policy, resolve_workload

if TYPE_CHECKING:  # deferred at runtime: keeps the spec module import-light
    from repro.sim.results import SimResult


def workload_for(model: str, seq_len: int) -> WorkloadConfig:
    """Build the registered workload ``model`` at ``seq_len`` (registry lookup)."""

    return resolve_workload(model, seq_len)


def config_to_jsonable(obj: Any) -> Any:
    """Recursively convert nested (frozen) config dataclasses to JSON-able data."""

    if is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: config_to_jsonable(getattr(obj, f.name)) for f in fields(obj)}
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [config_to_jsonable(item) for item in obj]
    if isinstance(obj, dict):
        return {str(k): config_to_jsonable(v) for k, v in obj.items()}
    return obj


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One fully resolved simulation job.

    ``label`` and ``coords`` are display/grouping metadata only; the identity
    of the point is the content hash of everything that determines the
    simulation outcome (system, workload, policy, ordering, constraints,
    max_cycles).
    """

    label: str
    system: SystemConfig
    workload: WorkloadConfig
    policy: PolicyConfig
    ordering: ThreadBlockOrdering = ThreadBlockOrdering.GQA_SHARED
    constraints: DataflowConstraints | None = None
    max_cycles: int | None = None
    #: Sorted (axis, value) pairs locating the point in its grid, e.g.
    #: (("l2_mib", 32), ("model", "llama3-70b"), ("policy", "dynmg")).
    coords: tuple[tuple[str, object], ...] = ()
    #: Lazily memoized content hash (hashing serializes the full config).
    _key: str | None = field(default=None, init=False, repr=False, compare=False)

    def config_dict(self) -> dict:
        """The simulation-determining configuration as JSON-able data."""

        return {
            "system": config_to_jsonable(self.system),
            "workload": config_to_jsonable(self.workload),
            "policy": config_to_jsonable(self.policy),
            "ordering": self.ordering.value,
            "constraints": config_to_jsonable(self.constraints),
            "max_cycles": self.max_cycles,
        }

    def key(self) -> str:
        """Content hash identifying this simulation (stable across processes).

        Labels and grid coordinates are deliberately excluded: two grid cells
        that resolve to identical configurations (e.g. Fig 9's "reference" run
        and its unoptimized @ 32MB cell) share one key and one simulation.
        """

        if self._key is None:
            canonical = json.dumps(self.config_dict(), sort_keys=True, separators=(",", ":"))
            # Lazy memo of a derived field: _key is compare=False/init=False,
            # so the point's identity (the hashed config) never changes.
            object.__setattr__(self, "_key", hashlib.sha256(canonical.encode()).hexdigest())  # repro: noqa[API001]
        return self._key

    def coord(self, axis: str, default: Any = None) -> Any:
        for name, value in self.coords:
            if name == axis:
                return value
        return default

    def describe(self) -> str:
        shape = self.workload.shape
        l2_mib = self.system.l2.size_bytes / 2**20
        return (
            f"{self.label}: {self.workload.name} L={shape.seq_len} "
            f"L2={l2_mib:g}MiB policy={self.policy.label}"
        )

    def execute(self) -> "SimResult":
        """Simulate this point (the executor's uniform worker entry point).

        Every sweepable point type (this class, serve points, ...) exposes
        ``execute() -> result`` where the result carries a ``label`` field and
        serializes via ``to_dict``/``from_dict``.
        """

        from repro.sim.runner import run_policy  # deferred: keeps spec import light

        kwargs = {}
        if self.max_cycles is not None:
            kwargs["max_cycles"] = self.max_cycles
        return run_policy(
            self.system,
            self.workload,
            self.policy,
            label=self.label,
            ordering=self.ordering,
            constraints=self.constraints,
            **kwargs,
        )


def resolved_point(
    system: SystemConfig,
    workload: WorkloadConfig,
    policy: PolicyConfig,
    label: str,
    coords: dict,
    max_cycles: int | None = None,
    ordering: ThreadBlockOrdering = ThreadBlockOrdering.GQA_SHARED,
    constraints: DataflowConstraints | None = None,
) -> SweepPoint:
    """Wrap an already-scaled (system, workload, policy) triple as a point.

    The low-level factory behind :meth:`repro.api.Scenario.to_point`;
    ``coords`` is the point's grid location (model / policy / seq_len / ...).
    """

    return SweepPoint(
        label=label,
        system=system,
        workload=workload,
        policy=policy,
        ordering=ordering,
        constraints=constraints,
        max_cycles=max_cycles,
        coords=tuple(sorted(coords.items(), key=lambda kv: kv[0])),
    )


def sweep_point(
    model: str,
    seq_len: int,
    policy: PolicyConfig | str,
    l2_mib: int | None = None,
    tier: ScaleTier = ScaleTier.CI,
    label: str | None = None,
    ordering: ThreadBlockOrdering = ThreadBlockOrdering.GQA_SHARED,
    max_cycles: int | None = None,
    constraints: DataflowConstraints | None = None,
    extra_coords: tuple[tuple[str, object], ...] = (),
) -> SweepPoint:
    """Resolve one grid cell into a :class:`SweepPoint` (via a Scenario)."""

    from repro.api import Scenario  # deferred: repro.api consumes this module

    scenario = Scenario.create(
        model,
        policy,
        seq_len=seq_len,
        l2_mib=l2_mib,
        tier=tier,
        ordering=ordering,
        max_cycles=max_cycles,
        constraints=constraints,
    )
    return scenario.to_point(label=label, extra_coords=extra_coords)


@dataclass(frozen=True, slots=True)
class SweepSpec:
    """A declarative cartesian grid of simulation points.

    Models and policies are registry names / paper-style labels
    (``"dynmg+BMA"``); ``l2_mib`` entries of ``None`` mean the system's default
    capacity.  Expansion order is the deterministic nesting
    model -> l2 -> seq_len -> policy, so job submission groups points that
    share a trace (same workload/seq-len) together.
    """

    models: tuple[str, ...]
    seq_lens: tuple[int, ...]
    policies: tuple[str, ...]
    l2_mib: tuple[int | None, ...] = (None,)
    tier: ScaleTier = ScaleTier.CI
    max_cycles: int | None = None
    ordering: ThreadBlockOrdering = ThreadBlockOrdering.GQA_SHARED

    def validate(self) -> "SweepSpec":
        for axis in ("models", "seq_lens", "policies", "l2_mib"):
            if not getattr(self, axis):
                raise ConfigError(f"SweepSpec.{axis} must be non-empty")
        for model in self.models:
            WORKLOADS.get(model)  # raises ConfigError listing known workloads
        for policy in self.policies:
            resolve_policy(policy)  # raises ConfigError listing known policies
        if any(s <= 0 for s in self.seq_lens):
            raise ConfigError("seq_lens must be positive")
        if any(m is not None and m <= 0 for m in self.l2_mib):
            raise ConfigError("l2_mib entries must be positive (or None for default)")
        return self

    @property
    def num_points(self) -> int:
        return len(self.models) * len(self.l2_mib) * len(self.seq_lens) * len(self.policies)

    def scenarios(self) -> tuple:
        """The grid as :class:`repro.api.Scenario` objects, in expansion order."""

        from repro.api import Scenario  # deferred: repro.api consumes this module

        self.validate()
        return tuple(
            Scenario(
                workload=model,
                policy=policy,
                seq_len=seq_len,
                l2_mib=l2,
                tier=self.tier,
                ordering=self.ordering,
                max_cycles=self.max_cycles,
            )
            for model in self.models
            for l2 in self.l2_mib
            for seq_len in self.seq_lens
            for policy in self.policies
        )

    def expand(self) -> tuple[SweepPoint, ...]:
        """Expand the grid into fully resolved points, in deterministic order."""

        return tuple(scenario.to_point() for scenario in self.scenarios())

    # -- (de)serialization for CLI spec files -------------------------------------------
    def to_dict(self) -> dict:
        return {
            "models": list(self.models),
            "seq_lens": list(self.seq_lens),
            "policies": list(self.policies),
            "l2_mib": list(self.l2_mib),
            "tier": self.tier.name,
            "max_cycles": self.max_cycles,
            "ordering": self.ordering.value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        return cls(
            models=tuple(data["models"]),
            seq_lens=tuple(data["seq_lens"]),
            policies=tuple(data["policies"]),
            l2_mib=tuple(data.get("l2_mib", (None,))),
            tier=parse_tier(data.get("tier", "CI")),
            max_cycles=data.get("max_cycles"),
            ordering=parse_ordering(data.get("ordering", "gqa-shared")),
        ).validate()


#: Fig 9's policy legend, as labels understood by :func:`resolve_policy`.
FIG9_POLICY_LABELS = (
    "unopt",
    "dyncta",
    "lcs",
    "cobrra",
    "dynmg",
    "dynmg+cobrra",
    "dynmg+BMA",
)


def fig9_spec(
    tier: ScaleTier = ScaleTier.CI,
    models: Iterable[str] = ("llama3-70b", "llama3-405b"),
    seq_len: int = FIG9_SEQ_LEN,
    l2_mib: Iterable[int] = FIG9_L2_MIB,
    policies: Iterable[str] = FIG9_POLICY_LABELS,
    max_cycles: int | None = None,
) -> SweepSpec:
    """The Fig 9 cache-size sweep as a declarative spec (the CLI default)."""

    return SweepSpec(
        models=tuple(models),
        seq_lens=(seq_len,),
        policies=tuple(policies),
        l2_mib=tuple(l2_mib),
        tier=tier,
        max_cycles=max_cycles,
    ).validate()
