"""Parallel sweep executor.

Runs sweep-point jobs across a process pool.  A *point* is anything satisfying
the small job contract -- ``key()`` (content hash), ``label``, ``describe()``,
``config_dict()`` and ``execute() -> result`` -- which today means kernel-level
:class:`~repro.sweep.spec.SweepPoint` and request-level
:class:`~repro.serve.sweep.ServePoint` jobs; the two kinds mix freely in one
submission and one result store.  Each worker process keeps its own
module-level trace cache (``repro.sim.runner``), so points that share a
workload reuse the generated trace for free; jobs are submitted in the
deterministic expansion order, which groups trace-sharing points together.
Failures are captured per point (with traceback) instead of aborting the
sweep, and points whose content hash is already present in the
:class:`~repro.sweep.store.ResultStore` are returned from disk without
re-simulation.
"""

from __future__ import annotations

import logging
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.sim.results import SimResult
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.sweep.store import ResultStore

if TYPE_CHECKING:
    from repro.serve.metrics import ServeMetrics

    #: What a point's ``execute()`` returns: a labelled, ``to_dict``-serializable
    #: result (``SimResult`` for kernel points, ``ServeMetrics`` for serve points).
    PointResult = SimResult | ServeMetrics

#: progress(done, total, outcome) -- invoked after every finished point.
ProgressCallback = Callable[[int, int, "PointOutcome"], None]

logger = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class PointOutcome:
    """What happened to one sweep point."""

    point: SweepPoint
    result: "PointResult | None"
    error: str | None
    cached: bool
    elapsed_s: float

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass(slots=True)
class SweepReport:
    """Outcome of a whole sweep, aligned with the submitted point order."""

    outcomes: list[PointOutcome]
    elapsed_s: float
    jobs: int

    @property
    def num_points(self) -> int:
        return len(self.outcomes)

    @property
    def num_ok(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def num_cached(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def num_simulated(self) -> int:
        return sum(1 for o in self.outcomes if o.ok and not o.cached)

    @property
    def failures(self) -> list[PointOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def result_for(self, point: SweepPoint) -> PointResult:
        """The result of ``point``; raises KeyError if it failed or is absent.

        An exact point match wins (its result carries the point's own label);
        otherwise any successful outcome with the same content hash answers,
        since deduplicated points share one simulation.
        """

        key = point.key()
        fallback: PointResult | None = None
        for outcome in self.outcomes:
            if outcome.ok and outcome.point.key() == key:
                assert outcome.result is not None
                if outcome.point == point:
                    return outcome.result
                if fallback is None:
                    fallback = outcome.result
        if fallback is not None:
            return fallback
        raise KeyError(f"no successful result for point {point.describe()!r}")

    def raise_on_failure(self) -> "SweepReport":
        if self.failures:
            first = self.failures[0]
            raise RuntimeError(
                f"{len(self.failures)}/{self.num_points} sweep points failed; "
                f"first: {first.point.describe()}\n{first.error}"
            )
        return self

    def summary(self) -> str:
        return (
            f"{self.num_points} points: {self.num_simulated} simulated, "
            f"{self.num_cached} cached, {len(self.failures)} failed "
            f"in {self.elapsed_s:.1f}s (jobs={self.jobs})"
        )

    def profile(self) -> dict:
        """Where the sweep's wall clock went, as profile-dict sections.

        ``sweep.execute`` sums the per-point execution time (which exceeds
        ``sweep.total`` when points ran in parallel); ``sweep.cached`` counts
        the points answered from the store without simulation.
        """

        executed = [o for o in self.outcomes if not o.cached]
        return {
            "sweep.total": {"wall_s": self.elapsed_s, "calls": 1},
            "sweep.execute": {
                "wall_s": sum(o.elapsed_s for o in executed),
                "calls": len(executed),
            },
            "sweep.cached": {"wall_s": 0.0, "calls": self.num_cached},
        }


def _execute_point(point: SweepPoint) -> "tuple[PointResult | None, str | None, float]":
    """Worker entry point: run one point's ``execute()``, capturing any failure.

    The wall-clock reads time the *orchestration* (per-point elapsed seconds
    in progress reporting); simulation results themselves carry only
    simulated time, so the suppressed DET002 sites cannot leak into stored
    metrics.
    """

    start = time.perf_counter()  # repro: noqa[DET002]
    try:
        return point.execute(), None, time.perf_counter() - start  # repro: noqa[DET002]
    except Exception:
        return None, traceback.format_exc(), time.perf_counter() - start  # repro: noqa[DET002]


def _with_label(result: PointResult, label: str) -> PointResult:
    """Relabel a shared/stored result for the point it is answering."""

    return result if result.label == label else replace(result, label=label)


def run_sweep(
    points: SweepSpec | Iterable[SweepPoint],
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: ProgressCallback | None = None,
    force: bool = False,
) -> SweepReport:
    """Run a grid of simulation points, in parallel when ``jobs > 1``.

    Points with identical content hashes are simulated once and the result is
    shared; points already present in ``store`` are returned from disk unless
    ``force`` is set.  ``jobs=1`` runs in-process (sharing this process's trace
    cache), which is also the fallback for tiny grids.
    """

    if isinstance(points, SweepSpec):
        points = points.expand()
    point_list: Sequence[SweepPoint] = list(points)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    # Orchestration timing only: elapsed_s reports sweep wall time, never
    # enters point results or the store.
    start = time.perf_counter()  # repro: noqa[DET002]
    total = len(point_list)
    outcomes: dict[int, PointOutcome] = {}
    done = 0

    def finish(
        indices: list[int],
        result: "PointResult | None",
        error: str | None,
        cached: bool,
        elapsed_s: float,
    ) -> None:
        nonlocal done
        for i in indices:
            point = point_list[i]
            labelled = _with_label(result, point.label) if result is not None else None
            outcome = PointOutcome(point, labelled, error, cached, elapsed_s)
            outcomes[i] = outcome
            done += 1
            status = "cached" if cached else ("ok" if outcome.ok else "failed")
            logger.debug(
                "[%d/%d] %s: %s (%.2fs)", done, total, status, point.label, elapsed_s
            )
            if progress is not None:
                progress(done, total, outcome)

    # Content-hash dedup: grid cells that resolve to identical configurations
    # (e.g. a baseline repeated per group) are simulated exactly once.
    by_key: dict[str, list[int]] = {}
    for i, point in enumerate(point_list):
        by_key.setdefault(point.key(), []).append(i)

    pending: list[tuple[SweepPoint, list[int]]] = []
    for key, indices in by_key.items():
        point = point_list[indices[0]]
        if store is not None and not force:
            stored = store.result_for(point)
            if stored is not None:
                finish(indices, stored, None, True, 0.0)
                continue
        pending.append((point, indices))

    def record(
        point: SweepPoint,
        indices: list[int],
        outcome: "tuple[PointResult | None, str | None, float]",
    ) -> None:
        result, error, elapsed_s = outcome
        if store is not None:
            store.put(point, result=result, error=error, elapsed_s=elapsed_s)
        finish(indices, result, error, False, elapsed_s)

    logger.info(
        "sweep: %d points (%d unique), %d pending after store reuse, jobs=%d",
        total,
        len(by_key),
        len(pending),
        jobs,
    )
    if jobs == 1 or len(pending) <= 1:
        for point, indices in pending:
            record(point, indices, _execute_point(point))
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(_execute_point, point): (point, indices)
                for point, indices in pending
            }
            for future in as_completed(futures):
                point, indices = futures[future]
                record(point, indices, future.result())

    return SweepReport(
        outcomes=[outcomes[i] for i in range(total)],
        elapsed_s=time.perf_counter() - start,  # repro: noqa[DET002]
        jobs=jobs,
    )
