"""Persistent JSON-lines result store for sweeps.

One line per finished point, keyed by the point's content hash.  Append-only
writes (with per-record flush) make the store crash-tolerant: a run killed
mid-write leaves at most one truncated trailing line, which is skipped on load,
so every completed point survives and a re-run resumes from where the sweep
died.  Records of failed points are kept for post-mortems but never count as
cache hits, so failures are retried on the next invocation.

Records are polymorphic over result type: each line carries a ``"kind"`` tag
(``"sim"`` for kernel-level :class:`~repro.sim.results.SimResult`, ``"serve"``
for request-level :class:`~repro.serve.metrics.ServeMetrics`, ``"cluster"``
for fleet-level :class:`~repro.cluster.metrics.ClusterMetrics`) whose
deserializer is resolved lazily, so kernel sweeps, serving sweeps, cluster
sweeps and mixed stores all load through the same path.  Lines written before
the tag existed default to ``"sim"``.
"""

from __future__ import annotations

import importlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.sim.results import SimResult
from repro.sweep.spec import SweepPoint

#: kind tag -> "module:class" of the result type; resolved on first use so the
#: store never imports the serve subsystem unless a serve record appears.
RESULT_KINDS = {
    "sim": "repro.sim.results:SimResult",
    "serve": "repro.serve.metrics:ServeMetrics",
    "cluster": "repro.cluster.metrics:ClusterMetrics",
}


def result_class(kind: str) -> type:
    """The result class registered for ``kind`` (lazy import by dotted path)."""

    try:
        target = RESULT_KINDS[kind]
    except KeyError:
        raise KeyError(
            f"unknown result kind {kind!r} (known: {sorted(RESULT_KINDS)})"
        ) from None
    module, _, attr = target.partition(":")
    return getattr(importlib.import_module(module), attr)


def result_kind_of(result: object) -> str:
    """The kind tag of a result object (``result_kind`` attribute, "sim" default)."""

    return getattr(type(result), "result_kind", "sim")


@dataclass(frozen=True, slots=True)
class StoreRecord:
    """One persisted sweep point."""

    key: str
    label: str
    status: str                    # "ok" | "error"
    result: "SimResult | object | None"
    error: str | None
    elapsed_s: float
    config: dict                   # the point's full config (reproducibility)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def kind(self) -> str:
        return result_kind_of(self.result) if self.result is not None else "sim"

    def to_json_line(self) -> str:
        payload = {
            "key": self.key,
            "label": self.label,
            "status": self.status,
            "kind": self.kind,
            "result": self.result.to_dict() if self.result is not None else None,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
            "config": self.config,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json_line(cls, line: str) -> "StoreRecord":
        payload = json.loads(line)
        result = payload.get("result")
        if result is not None:
            result = result_class(payload.get("kind", "sim")).from_dict(result)
        return cls(
            key=payload["key"],
            label=payload.get("label", ""),
            status=payload["status"],
            result=result,
            error=payload.get("error"),
            elapsed_s=payload.get("elapsed_s", 0.0),
            config=payload.get("config", {}),
        )


class ResultStore:
    """Content-addressed, resumable store of sweep results on disk."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._records: dict[str, StoreRecord] = {}
        self._skipped_lines = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = StoreRecord.from_json_line(line)
                except (json.JSONDecodeError, KeyError, TypeError):
                    # Truncated/corrupt line from an interrupted run: skip it;
                    # the point will simply be re-simulated.
                    self._skipped_lines += 1
                    continue
                self._records[record.key] = record

    # -- queries -----------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        record = self._records.get(key)
        return record is not None and record.ok

    def get(self, key: str) -> StoreRecord | None:
        return self._records.get(key)

    def result_for(self, point: SweepPoint) -> "SimResult | object | None":
        """The stored result of ``point``, or None if absent/failed."""

        record = self._records.get(point.key())
        if record is not None and record.ok:
            return record.result
        return None

    def records(self) -> Iterator[StoreRecord]:
        yield from self._records.values()

    def find(self, prefix: str) -> StoreRecord:
        """The unique record whose key starts with ``prefix`` (or whose label
        equals it).

        The CLI addresses stored results by abbreviated content hash, like git
        addresses commits.  Raises :class:`KeyError` when nothing matches or
        the abbreviation is ambiguous.
        """

        if not prefix:
            raise KeyError("empty store key")
        exact = self._records.get(prefix)
        if exact is not None:
            return exact
        matches = [
            record
            for key, record in self._records.items()
            if key.startswith(prefix)
        ]
        if not matches:
            matches = [r for r in self._records.values() if r.label == prefix]
        if not matches:
            available = self._describe(self._records.values())
            hint = f"; available: {available}" if available else ""
            raise KeyError(
                f"no stored result matches {prefix!r} "
                f"({len(self._records)} records in {self.path}){hint}"
            )
        if len(matches) > 1:
            raise KeyError(
                f"{prefix!r} is ambiguous: matches "
                f"{self._describe(matches, limit=len(matches))}"
            )
        return matches[0]

    @staticmethod
    def _describe(records: Iterable[StoreRecord], limit: int = 8) -> str:
        """Stored keys (with labels) as a short comma-separated suggestion."""

        described = sorted(
            f"{r.key[:12]} ({r.label})" if r.label else r.key[:12] for r in records
        )
        shown = ", ".join(described[:limit])
        more = f", +{len(described) - limit} more" if len(described) > limit else ""
        return f"{shown}{more}"

    @property
    def completed_count(self) -> int:
        """Successful records only (failure records are kept but never reused)."""

        return sum(1 for record in self._records.values() if record.ok)

    @property
    def skipped_lines(self) -> int:
        """Corrupt/truncated lines ignored while loading (crash leftovers)."""

        return self._skipped_lines

    # -- writes ------------------------------------------------------------------------
    def put(
        self,
        point: SweepPoint,
        result: "SimResult | object | None" = None,
        error: str | None = None,
        elapsed_s: float = 0.0,
    ) -> StoreRecord:
        """Persist one finished point (append + flush) and index it in memory."""

        if (result is None) == (error is None):
            raise ValueError("provide exactly one of `result` or `error`")
        record = StoreRecord(
            key=point.key(),
            label=point.label,
            status="ok" if result is not None else "error",
            result=result,
            error=error,
            elapsed_s=elapsed_s,
            config=point.config_dict(),
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(record.to_json_line() + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._records[record.key] = record
        return record
