"""Parallel sweep orchestration: declarative grids, a process-pool executor and
a persistent, content-addressed result store.

Every experiment of the paper (Fig 7/8/9, Tables 2-4) is a grid of independent
``(system, workload, policy)`` simulation points.  This package turns those
grids into hashable job descriptors (:mod:`repro.sweep.spec`), runs them across
worker processes with per-worker trace caching (:mod:`repro.sweep.executor`)
and persists every finished point in a JSON-lines store keyed by a content hash
of its full configuration (:mod:`repro.sweep.store`), so re-running a sweep
only simulates what is missing.
"""

from repro.sweep.executor import PointOutcome, SweepReport, run_sweep
from repro.sweep.spec import SweepPoint, SweepSpec, fig9_spec, sweep_point
from repro.sweep.store import ResultStore, StoreRecord

__all__ = [
    "PointOutcome",
    "ResultStore",
    "StoreRecord",
    "SweepPoint",
    "SweepReport",
    "SweepSpec",
    "fig9_spec",
    "run_sweep",
    "sweep_point",
]
