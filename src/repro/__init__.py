"""LLaMCAT reproduction: LLC cache arbitration and throttling for LLM decode.

The package reproduces Zhou, Lai & Zhang, *LLaMCAT: Optimizing Large Language
Model Inference with Cache Arbitration and Throttling* (ICPP 2025) as a pure
Python library:

* ``repro.config``    -- Table 5 system, workloads, policy parameters (Tables 1-4)
* ``repro.workloads`` -- GQA decode operators and tensor layouts
* ``repro.dataflow``  -- Timeloop-style constrained mapper + analytical model
* ``repro.trace``     -- mapping -> per-thread-block memory traces
* ``repro.cores`` / ``repro.noc`` / ``repro.llc`` / ``repro.dram`` -- the
  cycle-level substrate (vector cores, interconnect, sliced LLC with MSHR,
  DDR5 channels)
* ``repro.arbiter``   -- FCFS / B / MA / BMA / COBRRA request arbitration
* ``repro.throttle``  -- dynmg / DYNCTA / LCS throttling controllers
* ``repro.sim``       -- simulation engine, results, experiment runner
* ``repro.experiments`` -- one module per paper figure / table
* ``repro.hwcost``    -- §6.1 area model

Quick start::

    from repro import config, sim

    system = config.table5_system()
    workload = config.llama3_70b_logit(seq_len=1024)
    result = sim.run_policy(system, workload, config.bma())
    print(result.summary())
"""

from repro import config
from repro.config import (
    PolicyConfig,
    ScaleTier,
    SystemConfig,
    WorkloadConfig,
    bma,
    dynmg,
    llama3_405b_logit,
    llama3_70b_logit,
    table5_system,
    unoptimized,
)
from repro.sim import SimResult, Simulator, compare_policies, run_policy, simulate

__version__ = "1.0.0"

__all__ = [
    "PolicyConfig",
    "ScaleTier",
    "SimResult",
    "Simulator",
    "SystemConfig",
    "WorkloadConfig",
    "bma",
    "compare_policies",
    "config",
    "dynmg",
    "llama3_405b_logit",
    "llama3_70b_logit",
    "run_policy",
    "simulate",
    "table5_system",
    "unoptimized",
]
