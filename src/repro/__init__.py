"""LLaMCAT reproduction: LLC cache arbitration and throttling for LLM decode.

The package reproduces Zhou, Lai & Zhang, *LLaMCAT: Optimizing Large Language
Model Inference with Cache Arbitration and Throttling* (ICPP 2025) as a pure
Python library:

* ``repro.config``    -- Table 5 system, workloads, policy parameters (Tables 1-4)
* ``repro.workloads`` -- GQA decode operators and tensor layouts
* ``repro.dataflow``  -- Timeloop-style constrained mapper + analytical model
* ``repro.trace``     -- mapping -> per-thread-block memory traces
* ``repro.cores`` / ``repro.noc`` / ``repro.llc`` / ``repro.dram`` -- the
  cycle-level substrate (vector cores, interconnect, sliced LLC with MSHR,
  DDR5 channels)
* ``repro.arbiter``   -- FCFS / B / MA / BMA / COBRRA request arbitration
* ``repro.throttle``  -- dynmg / DYNCTA / LCS throttling controllers
* ``repro.sim``       -- simulation engine, results, experiment runner
* ``repro.serve``     -- request-stream serving simulation (continuous batching,
  arrival processes, latency SLO metrics)
* ``repro.cluster``   -- multi-replica serving over ``repro.serve`` (pluggable
  routers, heterogeneous fleets, fleet-level metrics)
* ``repro.experiments`` -- one module per paper figure / table
* ``repro.hwcost``    -- §6.1 area model

Quick start (the unified scenario API)::

    from repro import Simulation

    result = (
        Simulation.builder()
        .workload("llama3-70b", seq_len=8192)
        .policy("dynmg+BMA")
        .tier("ci")
        .run()
    )
    print(result.summary())

Scenario components (workloads, systems, policies, throttle controllers) are
named through the registries in :mod:`repro.registry`; anything registered
there is addressable from the CLI, sweep grids and :class:`repro.api.Scenario`
alike.
"""

from repro import config, registry
from repro.api import ClusterScenario, Scenario, ServeScenario, Simulation, run_scenario
from repro.config import (
    PolicyConfig,
    ScaleTier,
    SystemConfig,
    WorkloadConfig,
    bma,
    dynmg,
    llama3_405b_logit,
    llama3_70b_logit,
    table5_system,
    unoptimized,
)
from repro.sim import SimResult, Simulator, compare_policies, run_policy, simulate

__version__ = "1.0.0"

__all__ = [
    "ClusterScenario",
    "PolicyConfig",
    "ScaleTier",
    "Scenario",
    "ServeScenario",
    "SimResult",
    "Simulation",
    "Simulator",
    "SystemConfig",
    "WorkloadConfig",
    "bma",
    "compare_policies",
    "config",
    "dynmg",
    "llama3_405b_logit",
    "llama3_70b_logit",
    "registry",
    "run_policy",
    "run_scenario",
    "simulate",
    "table5_system",
    "unoptimized",
]
