"""Address-manipulation helpers.

Address interleaving decisions (which LLC slice and which DRAM channel/bank a
line maps to) are central to load balance, so they live here in one place and
are unit-tested on their own.  All shift/mask amounts are precomputed at
construction because these helpers sit on the simulator's hottest path (every
memory access consults them several times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ConfigError


def is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2; raises :class:`ConfigError` for non powers of two."""

    if not is_power_of_two(value):
        raise ConfigError(f"{value} is not a power of two")
    return value.bit_length() - 1


@dataclass(frozen=True, slots=True)
class AddressMap:
    """Line-interleaved mapping of physical addresses to LLC slices.

    The paper slices the L2 across the cache-set dimension; consecutive cache
    lines therefore round-robin across slices, which is what line interleaving
    produces.
    """

    line_size: int
    num_slices: int
    _line_shift: int = field(init=False, repr=False, compare=False)
    _slice_shift: int = field(init=False, repr=False, compare=False)
    _slice_mask: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.line_size):
            raise ConfigError(f"line_size must be a power of two, got {self.line_size}")
        if not is_power_of_two(self.num_slices):
            raise ConfigError(f"num_slices must be a power of two, got {self.num_slices}")
        object.__setattr__(self, "_line_shift", log2_int(self.line_size))
        object.__setattr__(self, "_slice_shift", log2_int(self.num_slices))
        object.__setattr__(self, "_slice_mask", self.num_slices - 1)

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def line_addr(self, addr: int) -> int:
        return (addr >> self._line_shift) << self._line_shift

    def slice_of(self, addr: int) -> int:
        """Slice index for a byte address (line interleaved)."""

        return (addr >> self._line_shift) & self._slice_mask

    def set_index(self, addr: int, sets_per_slice: int) -> int:
        """Cache-set index within the slice that owns ``addr``."""

        if not is_power_of_two(sets_per_slice):
            raise ConfigError(
                f"sets_per_slice must be a power of two, got {sets_per_slice}"
            )
        return ((addr >> self._line_shift) >> self._slice_shift) & (sets_per_slice - 1)

    def set_index_fn(self, sets_per_slice: int) -> Callable[[int], int]:
        """Return a fast closure computing :meth:`set_index` for a fixed set count."""

        if not is_power_of_two(sets_per_slice):
            raise ConfigError(
                f"sets_per_slice must be a power of two, got {sets_per_slice}"
            )
        shift = self._line_shift + self._slice_shift
        mask = sets_per_slice - 1
        return lambda addr: (addr >> shift) & mask

    def tag_of(self, addr: int, sets_per_slice: int) -> int:
        """Tag bits (everything above slice + set index)."""

        shift = self._slice_shift + log2_int(sets_per_slice)
        return (addr >> self._line_shift) >> shift


@dataclass(frozen=True, slots=True)
class DramAddressMap:
    """Interleaving of line addresses over DRAM channels / ranks / banks / rows.

    The layout is channel-interleaved at line granularity (standard for
    bandwidth-bound accelerators), then bank, then rank, with the remaining
    bits forming the row.  Row size in lines is ``row_bytes / line_size``.
    """

    line_size: int
    num_channels: int
    num_ranks: int
    num_banks: int
    row_bytes: int
    _line_shift: int = field(init=False, repr=False, compare=False)
    _channel_mask: int = field(init=False, repr=False, compare=False)
    _channel_shift: int = field(init=False, repr=False, compare=False)
    _row_shift: int = field(init=False, repr=False, compare=False)
    _bank_mask: int = field(init=False, repr=False, compare=False)
    _bank_shift: int = field(init=False, repr=False, compare=False)
    _rank_mask: int = field(init=False, repr=False, compare=False)
    _rank_shift: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for name in ("line_size", "num_channels", "num_ranks", "num_banks", "row_bytes"):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise ConfigError(f"{name} must be a power of two, got {value}")
        if self.row_bytes < self.line_size:
            raise ConfigError("row_bytes must be at least one cache line")
        line_shift = log2_int(self.line_size)
        channel_shift = log2_int(self.num_channels)
        lines_per_row = self.row_bytes // self.line_size
        row_shift = log2_int(lines_per_row)
        bank_shift = log2_int(self.num_banks)
        rank_shift = log2_int(self.num_ranks)
        object.__setattr__(self, "_line_shift", line_shift)
        object.__setattr__(self, "_channel_mask", self.num_channels - 1)
        object.__setattr__(self, "_channel_shift", channel_shift)
        object.__setattr__(self, "_row_shift", row_shift)
        object.__setattr__(self, "_bank_mask", self.num_banks - 1)
        object.__setattr__(self, "_bank_shift", bank_shift)
        object.__setattr__(self, "_rank_mask", self.num_ranks - 1)
        object.__setattr__(self, "_rank_shift", rank_shift)

    def decompose(self, addr: int) -> tuple[int, int, int, int]:
        """Return (channel, rank, bank, row) for a byte address."""

        line = addr >> self._line_shift
        channel = line & self._channel_mask
        line >>= self._channel_shift
        # Lines of the same row stay together within a bank so that streaming
        # accesses produce row-buffer hits.
        line >>= self._row_shift
        bank = line & self._bank_mask
        line >>= self._bank_shift
        rank = line & self._rank_mask
        row = line >> self._rank_shift
        return channel, rank, bank, row

    def channel_of(self, addr: int) -> int:
        return (addr >> self._line_shift) & self._channel_mask
