"""Common infrastructure shared by every subsystem of the LLaMCAT reproduction.

This package intentionally has no dependency on any other ``repro`` subpackage so
that the cache, DRAM, core and policy models can all build on the same primitive
vocabulary (requests, FIFOs, address math, statistics helpers) without import
cycles.
"""

from repro.common.errors import ConfigError, SimulationError, TraceError
from repro.common.fifo import BoundedFifo
from repro.common.mathutils import geomean, harmonic_mean, safe_div, speedup
from repro.common.types import (
    AccessType,
    MemRequest,
    MemResponse,
    RequestKind,
    line_address,
)

__all__ = [
    "AccessType",
    "BoundedFifo",
    "ConfigError",
    "MemRequest",
    "MemResponse",
    "RequestKind",
    "SimulationError",
    "TraceError",
    "geomean",
    "harmonic_mean",
    "line_address",
    "safe_div",
    "speedup",
]
