"""Core value types exchanged between cores, the NoC, the LLC and DRAM.

The simulator is organised around :class:`MemRequest` objects flowing from the
cores towards DRAM and :class:`MemResponse` objects flowing back.  Both are
plain mutable dataclasses with ``slots`` to keep per-request overhead low --
a single decode-operator simulation creates tens of thousands of them.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class AccessType(enum.IntEnum):
    """Read/write direction of a memory access."""

    READ = 0
    WRITE = 1


class RequestKind(enum.IntEnum):
    """Which tensor a request belongs to (used for statistics only)."""

    KV = 0          # KV-cache (the dominant traffic in decode)
    ACTIVATION = 1  # queries / attention scores
    OUTPUT = 2      # operator output writes
    OTHER = 3


_REQ_ID_COUNTER = itertools.count()


def next_request_id() -> int:
    """Return a process-wide unique request identifier."""

    return next(_REQ_ID_COUNTER)


def line_address(addr: int, line_size: int) -> int:
    """Align ``addr`` down to its cache-line address."""

    return addr - (addr % line_size)


@dataclass(slots=True)
class MemRequest:
    """A memory request as seen by the LLC.

    Requests carry enough provenance (core, thread block) for the balanced
    arbiter and the throttling controllers to attribute traffic to cores.
    """

    addr: int
    rw: AccessType
    core_id: int
    tb_id: int = -1
    kind: RequestKind = RequestKind.KV
    size: int = 64
    req_id: int = field(default_factory=next_request_id)
    issue_cycle: int = 0          # cycle the core issued the access
    arrive_cycle: int = 0         # cycle it entered the LLC request queue
    line_addr: int = -1           # filled by the issuing L1 / NoC

    def aligned(self, line_size: int) -> "MemRequest":
        """Return ``self`` with ``line_addr`` populated for ``line_size``."""

        self.line_addr = line_address(self.addr, line_size)
        return self

    @property
    def is_read(self) -> bool:
        return self.rw == AccessType.READ

    @property
    def is_write(self) -> bool:
        return self.rw == AccessType.WRITE


@dataclass(slots=True)
class MemResponse:
    """Completion notification delivered back to the requesting core."""

    req_id: int
    core_id: int
    tb_id: int
    line_addr: int
    rw: AccessType
    complete_cycle: int
    served_by: str = "l2"   # "l1" | "l2" | "mshr" | "dram" -- statistics only


@dataclass(slots=True)
class TraceEntry:
    """One element of a per-thread-block memory trace.

    ``compute_cycles`` are spent before the memory access is issued; an entry
    with ``addr < 0`` is a pure-compute bubble (no memory access at all).
    """

    compute_cycles: int
    addr: int
    rw: AccessType = AccessType.READ
    size: int = 64
    kind: RequestKind = RequestKind.KV

    @property
    def has_access(self) -> bool:
        return self.addr >= 0
