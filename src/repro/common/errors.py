"""Exception hierarchy used across the reproduction."""


class ReproError(Exception):
    """Base class for all library-specific exceptions."""


class ConfigError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class SimulationError(ReproError):
    """Raised when the simulator reaches an impossible state.

    Any occurrence of this exception indicates a bug in the model (for
    example, freeing an MSHR entry twice), never a property of the workload.
    """


class LivelockError(SimulationError):
    """Raised by the liveness watchdog when a run stops making progress.

    ``report`` is the structured :class:`repro.sim.liveness.StallReport`
    snapshot taken at the moment the watchdog fired (``None`` only when the
    error is constructed without one); the rendered report is also embedded
    in the message so any layer that merely stringifies the failure -- sweep
    failure records, CI logs -- still shows the component-level stall state.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class TraceError(ReproError):
    """Raised when a memory trace is malformed or inconsistent."""
