"""Exception hierarchy used across the reproduction."""


class ReproError(Exception):
    """Base class for all library-specific exceptions."""


class ConfigError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class SimulationError(ReproError):
    """Raised when the simulator reaches an impossible state.

    Any occurrence of this exception indicates a bug in the model (for
    example, freeing an MSHR entry twice), never a property of the workload.
    """


class TraceError(ReproError):
    """Raised when a memory trace is malformed or inconsistent."""
