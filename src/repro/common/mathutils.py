"""Small numeric helpers used by the statistics and experiment layers."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def safe_div(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Return ``numerator / denominator`` or ``default`` when the denominator is 0."""

    if denominator == 0:
        return default
    return numerator / denominator


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the paper reports geomean speedups)."""

    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError(f"geomean requires positive values, got {vals}")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values."""

    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("harmonic_mean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError(f"harmonic_mean requires positive values, got {vals}")
    return len(vals) / sum(1.0 / v for v in vals)


def speedup(baseline_cycles: float, optimized_cycles: float) -> float:
    """Speedup of ``optimized`` over ``baseline`` (``>1`` means faster)."""

    if optimized_cycles <= 0:
        raise ValueError(f"optimized_cycles must be positive, got {optimized_cycles}")
    if baseline_cycles <= 0:
        raise ValueError(f"baseline_cycles must be positive, got {baseline_cycles}")
    return baseline_cycles / optimized_cycles


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean."""

    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("mean of an empty sequence")
    return sum(vals) / len(vals)


def weighted_mean(values: Iterable[float], weights: Iterable[float]) -> float:
    """Mean of ``values`` weighted by non-negative ``weights`` (not all zero)."""

    vals = [float(v) for v in values]
    wts = [float(w) for w in weights]
    if not vals:
        raise ValueError("weighted_mean of an empty sequence")
    if len(vals) != len(wts):
        raise ValueError(
            f"weighted_mean needs one weight per value, got {len(vals)} values "
            f"and {len(wts)} weights"
        )
    if any(w < 0 for w in wts):
        raise ValueError(f"weighted_mean requires non-negative weights, got {wts}")
    total = sum(wts)
    if total == 0:
        raise ValueError("weighted_mean requires at least one positive weight")
    return sum(v * w for v, w in zip(vals, wts, strict=True)) / total


def percentile(values: Sequence[float], point: float) -> float:
    """Linear-interpolation percentile of ``values`` at ``point`` in [0, 100]."""

    return percentiles(values, (point,))[0]


def percentiles(values: Sequence[float], points: Sequence[float]) -> list[float]:
    """Linear-interpolation percentiles of ``values`` at each point in [0, 100]."""

    if not values:
        raise ValueError("percentiles of an empty sequence")
    data = sorted(float(v) for v in values)
    out: list[float] = []
    for p in points:
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile point out of range: {p}")
        if len(data) == 1:
            out.append(data[0])
            continue
        rank = (p / 100.0) * (len(data) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        frac = rank - lo
        out.append(data[lo] * (1 - frac) + data[hi] * frac)
    return out


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` to the inclusive range [lo, hi]."""

    if lo > hi:
        raise ValueError(f"invalid clamp range [{lo}, {hi}]")
    return max(lo, min(hi, value))


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for positive ``b``."""

    if b <= 0:
        raise ValueError(f"ceil_div requires positive divisor, got {b}")
    return -(-a // b)


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the next multiple of ``multiple``."""

    if multiple <= 0:
        raise ValueError(f"round_up requires positive multiple, got {multiple}")
    return ceil_div(value, multiple) * multiple
