"""Deterministic RNG helpers.

All stochastic behaviour in the library (synthetic traces, tie-breaking in
tests) flows through :func:`make_rng` so a single seed reproduces a run
bit-for-bit.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0xC0FFEE


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a NumPy generator seeded deterministically."""

    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(seed: int, *stream: int) -> int:
    """Derive a child seed from a parent seed and a stream identifier tuple.

    Used to give every core / channel its own independent stream while keeping
    the whole simulation reproducible from one seed.
    """

    value = seed & 0xFFFFFFFF
    for item in stream:
        value = (value * 1000003 + (item & 0xFFFFFFFF)) & 0xFFFFFFFF
    return value
