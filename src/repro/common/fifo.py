"""A bounded FIFO used for every hardware queue in the model.

The request queue, response queue, ``hit_buffer`` and ``sent_reqs`` structures
of the paper are all bounded FIFOs; modelling them with one class keeps
capacity accounting and occupancy statistics uniform.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generic, Iterable, Iterator, Optional, TypeVar

T = TypeVar("T")


class BoundedFifo(Generic[T]):
    """A FIFO with a fixed capacity.

    ``push`` returns ``False`` instead of raising when the queue is full so
    hardware back-pressure can be modelled without exceptions in the hot path.
    """

    __slots__ = ("_capacity", "_items", "peak_occupancy", "total_pushes")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"FIFO capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        self._items: deque[T] = deque()
        self.peak_occupancy = 0
        self.total_pushes = 0

    # -- capacity -----------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self._capacity

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def free_slots(self) -> int:
        return self._capacity - len(self._items)

    # -- mutation -----------------------------------------------------------------
    def push(self, item: T) -> bool:
        """Append ``item``; returns ``False`` (and drops nothing) when full."""

        if self.full:
            return False
        self._items.append(item)
        self.total_pushes += 1
        if len(self._items) > self.peak_occupancy:
            self.peak_occupancy = len(self._items)
        return True

    def pop(self) -> T:
        """Remove and return the oldest element."""

        return self._items.popleft()

    def pop_index(self, index: int) -> T:
        """Remove and return the element at ``index`` (0 = oldest).

        Arbiters that reorder requests (balanced / MSHR-aware policies) select
        an arbitrary queue element; a ``deque`` rotation keeps this O(n) with a
        very small constant, which is fine for the 12-entry request queues of
        the paper's configuration.
        """

        items = self._items
        if index < 0 or index >= len(items):
            raise IndexError(f"pop_index({index}) on FIFO of length {len(items)}")
        if index == 0:
            return items.popleft()
        items.rotate(-index)
        item = items.popleft()
        items.rotate(index)
        return item

    def peek(self, index: int = 0) -> T:
        return self._items[index]

    def clear(self) -> None:
        self._items.clear()

    def extend(self, items: Iterable[T]) -> int:
        """Push items until the queue fills; returns how many were accepted."""

        accepted = 0
        for item in items:
            if not self.push(item):
                break
            accepted += 1
        return accepted

    # -- inspection ---------------------------------------------------------------
    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def find(self, predicate: Callable[[T], bool]) -> Optional[int]:
        """Return the index of the first element satisfying ``predicate``."""

        for i, item in enumerate(self._items):
            if predicate(item):
                return i
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoundedFifo({list(self._items)!r}, capacity={self._capacity})"
