"""Physical memory layout of the decode operator's tensors.

The decode-stage Logit operator touches three tensors:

* ``Q``        -- queries,       shape [H, G, D]
* ``K``        -- cached keys,   shape [H, L, D]   (the KV cache, dominant traffic)
* ``AttScore`` -- output logits, shape [H, G, L]

The Attend operator touches ``AttScore``, ``V`` ([H, L, D]) and ``Out`` ([H, G, D]).
Tensors are laid out contiguously and row-major in a flat byte address space, in
the order Q, K/V, output, each aligned to a 4 KiB page.  The layout object maps
logical indices to byte addresses; the trace generator only ever goes through it,
so tests can verify that no two tensors overlap and that the KV cache is
row-major in (h, l, d) -- which is what gives streaming row-buffer-friendly DRAM
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.mathutils import round_up
from repro.config.workload import OperatorKind, WorkloadConfig

PAGE_BYTES = 4096


@dataclass(frozen=True, slots=True)
class OperandLayout:
    """One tensor: base address plus row-major strides (in bytes)."""

    name: str
    base: int
    shape: tuple[int, ...]
    strides: tuple[int, ...]
    element_bytes: int

    @property
    def size_bytes(self) -> int:
        if not self.shape:
            return 0
        total = self.element_bytes
        for extent in self.shape:
            total *= extent
        return total

    @property
    def end(self) -> int:
        return self.base + self.size_bytes

    def address(self, *indices: int) -> int:
        """Byte address of the element at ``indices``."""

        if len(indices) != len(self.shape):
            raise ConfigError(
                f"{self.name}: expected {len(self.shape)} indices, got {len(indices)}"
            )
        addr = self.base
        for idx, extent, stride in zip(indices, self.shape, self.strides, strict=True):
            if not 0 <= idx < extent:
                raise ConfigError(
                    f"{self.name}: index {idx} out of range [0, {extent}) "
                    f"for shape {self.shape}"
                )
            addr += idx * stride
        return addr

    def row_address(self, *leading_indices: int) -> int:
        """Address of the first element of the innermost row at ``leading_indices``."""

        padded = tuple(leading_indices) + (0,) * (len(self.shape) - len(leading_indices))
        return self.address(*padded)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


def _row_major_strides(shape: tuple[int, ...], element_bytes: int) -> tuple[int, ...]:
    strides = [element_bytes] * len(shape)
    for i in range(len(shape) - 2, -1, -1):
        strides[i] = strides[i + 1] * shape[i + 1]
    return tuple(strides)


@dataclass(frozen=True, slots=True)
class OperatorLayout:
    """Layout of all operands of a decode operator instance."""

    query: OperandLayout     # Q for Logit, AttScore for Attend
    kv: OperandLayout        # K for Logit, V for Attend
    output: OperandLayout

    @property
    def operands(self) -> tuple[OperandLayout, OperandLayout, OperandLayout]:
        return (self.query, self.kv, self.output)

    @property
    def total_bytes(self) -> int:
        return sum(op.size_bytes for op in self.operands)

    def operand_of(self, addr: int) -> OperandLayout | None:
        for op in self.operands:
            if op.contains(addr):
                return op
        return None


def build_layout(workload: WorkloadConfig, base_address: int = 0x1000_0000) -> OperatorLayout:
    """Build the operand layout for a decode-operator workload.

    The layout is deterministic so that the same workload config always maps to
    the same addresses (traces are reproducible and cacheable).
    """

    workload.validate()
    shape = workload.shape
    eb = workload.element_bytes
    h, g, d, l = shape.num_kv_heads, shape.group_size, shape.head_dim, shape.seq_len

    if workload.operator == OperatorKind.LOGIT:
        query_shape = (h, g, d)          # Q
        kv_shape = (h, l, d)             # K
        out_shape = (h, g, l)            # AttScore
    elif workload.operator == OperatorKind.ATTEND:
        query_shape = (h, g, l)          # AttScore (input)
        kv_shape = (h, l, d)             # V
        out_shape = (h, g, d)            # Out
    else:  # pragma: no cover - enum is exhaustive
        raise ConfigError(f"unsupported operator {workload.operator}")

    cursor = base_address
    query = OperandLayout(
        name="query",
        base=cursor,
        shape=query_shape,
        strides=_row_major_strides(query_shape, eb),
        element_bytes=eb,
    )
    cursor = round_up(query.end, PAGE_BYTES)
    kv = OperandLayout(
        name="kv",
        base=cursor,
        shape=kv_shape,
        strides=_row_major_strides(kv_shape, eb),
        element_bytes=eb,
    )
    cursor = round_up(kv.end, PAGE_BYTES)
    output = OperandLayout(
        name="output",
        base=cursor,
        shape=out_shape,
        strides=_row_major_strides(out_shape, eb),
        element_bytes=eb,
    )
    return OperatorLayout(query=query, kv=kv, output=output)
