"""Workload modelling: tensor layouts and decode-stage attention operators."""

from repro.workloads.layout import OperandLayout, OperatorLayout, build_layout
from repro.workloads.operators import (
    AttendOperator,
    DecodeOperator,
    LogitOperator,
    make_operator,
)

__all__ = [
    "AttendOperator",
    "DecodeOperator",
    "LogitOperator",
    "OperandLayout",
    "OperatorLayout",
    "build_layout",
    "make_operator",
]
