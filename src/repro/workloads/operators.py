"""Decode-stage operator descriptors.

These classes describe the *iteration space* of an operator and which operand
rows each iteration point touches.  The dataflow mapper tiles this iteration
space into thread blocks and the trace generator walks the tiles to emit memory
accesses; neither of them needs to know which attention operator it is working
on beyond this interface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.config.workload import OperatorKind, WorkloadConfig
from repro.workloads.layout import OperatorLayout, build_layout


@dataclass(frozen=True, slots=True)
class IterationSpace:
    """Named loop extents of a decode operator.

    ``h``: KV head group, ``g``: query head within the group, ``l``: sequence
    position, ``d``: head dimension (always the vectorised axis).
    """

    h: int
    g: int
    l: int
    d: int

    def total_points(self) -> int:
        return self.h * self.g * self.l * self.d


class DecodeOperator:
    """Base class for decode operators; concrete classes bind tensor roles."""

    #: Name of the reduction axis ("d" for Logit, "l" for Attend).
    reduction_axis: str = "d"

    def __init__(self, workload: WorkloadConfig, base_address: int = 0x1000_0000) -> None:
        self.workload = workload.validate()
        self.layout: OperatorLayout = build_layout(workload, base_address)
        shape = workload.shape
        self.space = IterationSpace(
            h=shape.num_kv_heads, g=shape.group_size, l=shape.seq_len, d=shape.head_dim
        )
        self.element_bytes = workload.element_bytes

    # ---- addresses of whole rows (the coalesced vector-access granularity) -------
    def kv_row_address(self, h: int, l: int) -> int:
        """Byte address of KV row [h, l, 0:D] -- one coalesced vector load."""

        return self.layout.kv.address(h, l, 0)

    def kv_row_bytes(self) -> int:
        return self.space.d * self.element_bytes

    def query_row_address(self, h: int, g: int) -> int:
        """Byte address of the per-(h, g) query-side operand row."""

        return self.layout.query.address(h, g, 0)

    def query_row_bytes(self) -> int:
        raise NotImplementedError

    def output_address(self, h: int, g: int, inner: int) -> int:
        """Byte address of output element (h, g, inner)."""

        return self.layout.output.address(h, g, inner)

    def output_extent(self) -> int:
        """Extent of the output's innermost dimension (per (h, g))."""

        raise NotImplementedError

    def macs_per_output_element(self) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        s = self.space
        return (
            f"{type(self).__name__}(H={s.h}, G={s.g}, L={s.l}, D={s.d}, "
            f"{self.layout.total_bytes / 2**20:.1f} MiB footprint)"
        )


class LogitOperator(DecodeOperator):
    """``AttScore[h, g, l] = sum_d Q[h, g, d] * K[h, l, d]`` (the paper's benchmark).

    Every output element consumes one full K row (D elements); K rows are shared
    by all G query heads of the same group -- the GQA sharing that MSHR merging
    and throttling exploit.
    """

    reduction_axis = "d"

    def __init__(self, workload: WorkloadConfig, base_address: int = 0x1000_0000) -> None:
        if workload.operator != OperatorKind.LOGIT:
            raise ConfigError("LogitOperator requires an OperatorKind.LOGIT workload")
        super().__init__(workload, base_address)

    def query_row_bytes(self) -> int:
        return self.space.d * self.element_bytes

    def output_extent(self) -> int:
        return self.space.l

    def macs_per_output_element(self) -> int:
        return self.space.d


class AttendOperator(DecodeOperator):
    """``Out[h, g, d] = sum_l AttScore[h, g, l] * V[h, l, d]``.

    Included for completeness (the paper motivates KV-cache traffic generally);
    the reduction runs over ``l`` so every output element touches all L rows of V.
    """

    reduction_axis = "l"

    def __init__(self, workload: WorkloadConfig, base_address: int = 0x1000_0000) -> None:
        if workload.operator != OperatorKind.ATTEND:
            raise ConfigError("AttendOperator requires an OperatorKind.ATTEND workload")
        super().__init__(workload, base_address)

    def query_row_bytes(self) -> int:
        return self.space.l * self.element_bytes

    def output_extent(self) -> int:
        return self.space.d

    def macs_per_output_element(self) -> int:
        return self.space.l


def make_operator(workload: WorkloadConfig, base_address: int = 0x1000_0000) -> DecodeOperator:
    """Instantiate the right operator class for a workload config."""

    if workload.operator == OperatorKind.LOGIT:
        return LogitOperator(workload, base_address)
    if workload.operator == OperatorKind.ATTEND:
        return AttendOperator(workload, base_address)
    raise ConfigError(f"unsupported operator kind {workload.operator}")
