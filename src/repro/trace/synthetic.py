"""Synthetic traces used by unit tests and micro-benchmarks.

These exercise the cache / MSHR / DRAM substrates with controlled access
patterns that have known answers (pure stream -> ~0% L2 hit rate and perfect
row-buffer locality; shared hot set -> high MSHR-merge opportunity; etc.),
independent of the attention workloads.
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.common.types import AccessType, RequestKind, TraceEntry
from repro.trace.threadblock import ThreadBlock, Trace


def _blocks_from_lines(
    line_lists: list[list[int]],
    line_size: int,
    compute_cycles: int,
    rw: AccessType = AccessType.READ,
    name: str = "synthetic",
) -> Trace:
    blocks = []
    for tb_id, lines in enumerate(line_lists):
        entries = [
            TraceEntry(
                compute_cycles=compute_cycles,
                addr=line_addr,
                rw=rw,
                size=line_size,
                kind=RequestKind.OTHER,
            )
            for line_addr in lines
        ]
        blocks.append(ThreadBlock(tb_id=tb_id, h=0, g=0, tile_index=tb_id, entries=entries))
    return Trace(blocks=blocks, name=name, line_size=line_size).validate()


def make_stream_trace(
    num_blocks: int = 16,
    lines_per_block: int = 64,
    line_size: int = 64,
    compute_cycles: int = 0,
    base: int = 0x2000_0000,
) -> Trace:
    """Disjoint streaming reads: every line is touched exactly once."""

    line_lists = []
    addr = base
    for _ in range(num_blocks):
        lines = []
        for _ in range(lines_per_block):
            lines.append(addr)
            addr += line_size
        line_lists.append(lines)
    return _blocks_from_lines(line_lists, line_size, compute_cycles, name="stream")


def make_shared_hotset_trace(
    num_blocks: int = 16,
    lines_per_block: int = 64,
    hot_lines: int = 64,
    line_size: int = 64,
    compute_cycles: int = 0,
    base: int = 0x3000_0000,
) -> Trace:
    """Every block reads the same ``hot_lines`` lines (maximal sharing).

    Concurrent blocks on different cores produce many requests for the same
    lines, which should surface as MSHR merges and L2 hits.
    """

    hot = [base + i * line_size for i in range(hot_lines)]
    line_lists = []
    for _ in range(num_blocks):
        lines = [hot[i % hot_lines] for i in range(lines_per_block)]
        line_lists.append(lines)
    return _blocks_from_lines(line_lists, line_size, compute_cycles, name="hotset")


def make_random_trace(
    num_blocks: int = 16,
    lines_per_block: int = 64,
    footprint_lines: int = 4096,
    line_size: int = 64,
    compute_cycles: int = 0,
    seed: int = 7,
    base: int = 0x4000_0000,
) -> Trace:
    """Uniformly random reads over a fixed footprint (poor locality everywhere)."""

    rng = make_rng(seed)
    line_lists = []
    for _ in range(num_blocks):
        idx = rng.integers(0, footprint_lines, size=lines_per_block)
        line_lists.append([base + int(i) * line_size for i in idx])
    return _blocks_from_lines(line_lists, line_size, compute_cycles, name="random")


def make_pointer_chase_trace(
    num_blocks: int = 4,
    chain_length: int = 256,
    stride_lines: int = 33,
    line_size: int = 64,
    compute_cycles: int = 0,
    base: int = 0x5000_0000,
) -> Trace:
    """Strided dependent chain: no spatial locality, serialised latency.

    The large odd stride defeats both row-buffer locality and MSHR merging, so
    it is used to test the latency-bound corner of the DRAM model.
    """

    line_lists = []
    for b in range(num_blocks):
        lines = []
        addr_line = b * 7919  # co-prime offset so blocks do not alias
        for _ in range(chain_length):
            lines.append(base + (addr_line % (1 << 20)) * line_size)
            addr_line += stride_lines
        line_lists.append(lines)
    return _blocks_from_lines(line_lists, line_size, compute_cycles, name="pointer-chase")


def make_write_stream_trace(
    num_blocks: int = 8,
    lines_per_block: int = 64,
    line_size: int = 64,
    base: int = 0x6000_0000,
) -> Trace:
    """Streaming writes (exercises write-allocate and dirty writebacks)."""

    line_lists = []
    addr = base
    for _ in range(num_blocks):
        lines = []
        for _ in range(lines_per_block):
            lines.append(addr)
            addr += line_size
        line_lists.append(lines)
    return _blocks_from_lines(
        line_lists, line_size, compute_cycles=0, rw=AccessType.WRITE, name="write-stream"
    )
