"""Static trace statistics (no simulation involved).

Used by tests to verify the generator produces the expected access counts and
by examples to report workload footprints before running the simulator.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.common.types import RequestKind
from repro.trace.threadblock import Trace


@dataclass(frozen=True, slots=True)
class TraceStats:
    """Summary statistics of a trace."""

    num_blocks: int
    total_accesses: int
    total_reads: int
    total_writes: int
    unique_lines: int
    footprint_bytes: int
    accesses_by_kind: dict[RequestKind, int]
    avg_accesses_per_block: float
    avg_reuse: float        # total line accesses / unique lines
    max_block_accesses: int
    min_block_accesses: int

    def describe(self) -> str:
        return (
            f"{self.num_blocks} blocks, {self.total_accesses} accesses "
            f"({self.total_reads} R / {self.total_writes} W), "
            f"{self.footprint_bytes / 2**20:.2f} MiB footprint, "
            f"avg reuse {self.avg_reuse:.2f}x"
        )


def compute_trace_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``."""

    trace.validate()
    line_size = trace.line_size
    unique: set[int] = set()
    by_kind: Counter[RequestKind] = Counter()
    per_block_counts: list[int] = []
    total = 0
    reads = 0
    writes = 0
    for block in trace:
        count = 0
        for entry in block.entries:
            if not entry.has_access:
                continue
            count += 1
            total += 1
            by_kind[entry.kind] += 1
            unique.add(entry.addr - (entry.addr % line_size))
            if entry.rw.name == "READ":
                reads += 1
            else:
                writes += 1
        per_block_counts.append(count)

    num_blocks = len(per_block_counts)
    return TraceStats(
        num_blocks=num_blocks,
        total_accesses=total,
        total_reads=reads,
        total_writes=writes,
        unique_lines=len(unique),
        footprint_bytes=len(unique) * line_size,
        accesses_by_kind=dict(by_kind),
        avg_accesses_per_block=total / num_blocks if num_blocks else 0.0,
        avg_reuse=total / len(unique) if unique else 0.0,
        max_block_accesses=max(per_block_counts) if per_block_counts else 0,
        min_block_accesses=min(per_block_counts) if per_block_counts else 0,
    )
