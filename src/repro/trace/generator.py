"""Unroll a dataflow mapping into per-thread-block memory traces.

This is the second arrow of the hybrid flow (Fig 6): ``mapping -> memory
trace``.  The generator walks the mapping's thread-block space in dispatch
order; for each thread block it emits

* the query-operand loads (once per block, they stay resident in L1),
* one coalesced KV-row load per reduction step -- split into cache-line
  requests -- interleaved with the vector-MAC compute cycles, and
* the output-line writes at the end of the block.

Memory requests of the 128-lane vector core are coalesced by construction
(consecutive ``d`` elements of one KV row land in the same few cache lines),
which is how the paper reduces request counts by over an order of magnitude
relative to per-thread requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import TraceError
from repro.common.mathutils import ceil_div
from repro.common.types import AccessType, RequestKind, TraceEntry
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig
from repro.dataflow.constraints import DataflowConstraints
from repro.dataflow.mapper import Mapping, build_mapping
from repro.dataflow.ordering import ThreadBlockOrdering
from repro.trace.threadblock import ThreadBlock, Trace
from repro.workloads.operators import DecodeOperator, make_operator


@dataclass(slots=True)
class TraceGenerator:
    """Configurable trace generator for decode operators."""

    system: SystemConfig
    constraints: DataflowConstraints | None = None
    ordering: ThreadBlockOrdering = ThreadBlockOrdering.GQA_SHARED

    def generate(self, workload: WorkloadConfig) -> Trace:
        operator = make_operator(workload)
        mapping = build_mapping(operator, self.system, self.constraints, self.ordering)
        return unroll_mapping(operator, mapping, self.system, name=workload.name)


def generate_trace(
    workload: WorkloadConfig,
    system: SystemConfig,
    constraints: DataflowConstraints | None = None,
    ordering: ThreadBlockOrdering = ThreadBlockOrdering.GQA_SHARED,
) -> Trace:
    """Convenience wrapper: workload + system -> full operator trace."""

    return TraceGenerator(system, constraints, ordering).generate(workload)


def unroll_mapping(
    operator: DecodeOperator,
    mapping: Mapping,
    system: SystemConfig,
    name: str = "trace",
) -> Trace:
    """Unroll ``mapping`` of ``operator`` into a :class:`Trace`."""

    line = system.l2.line_size
    mac_cycles = system.core.compute_cycles_per_vector_mac
    space = operator.space
    element_bytes = operator.element_bytes

    kv_row_bytes = operator.kv_row_bytes()
    kv_lines_per_row = ceil_div(kv_row_bytes, line)
    query_row_bytes = operator.query_row_bytes()
    query_lines = ceil_div(query_row_bytes, line)
    reduction_extent = space.d if operator.reduction_axis == "d" else space.l
    vector_steps = ceil_div(reduction_extent, mapping.vector_elements)

    inner_extent = operator.output_extent()

    blocks: list[ThreadBlock] = []
    tb_id = 0
    for h, g, tile in mapping.thread_block_coords():
        inner_start = tile * mapping.inner_tile
        inner_stop = min(inner_start + mapping.inner_tile, inner_extent)
        if inner_start >= inner_stop:
            raise TraceError(
                f"mapping produced an empty tile (tile={tile}, inner_extent={inner_extent})"
            )
        entries: list[TraceEntry] = []

        # -- query operand: loaded once per thread block --------------------------
        qbase = operator.query_row_address(h, g)
        for i in range(query_lines):
            entries.append(
                TraceEntry(
                    compute_cycles=0,
                    addr=qbase + i * line,
                    rw=AccessType.READ,
                    size=min(line, query_row_bytes - i * line),
                    kind=RequestKind.ACTIVATION,
                )
            )

        # -- KV rows + compute ------------------------------------------------------
        if operator.reduction_axis == "d":
            # Logit: one K row per output element of the tile.
            for l in range(inner_start, inner_stop):
                row_base = operator.kv_row_address(h, l)
                for i in range(kv_lines_per_row):
                    # Attach the MAC cost to the first line of the row; the
                    # remaining line loads of the same coalesced vector access
                    # issue back-to-back.
                    compute = mac_cycles * vector_steps if i == 0 else 0
                    entries.append(
                        TraceEntry(
                            compute_cycles=compute,
                            addr=row_base + i * line,
                            rw=AccessType.READ,
                            size=min(line, kv_row_bytes - i * line),
                            kind=RequestKind.KV,
                        )
                    )
        else:
            # Attend: the reduction runs over l, so the block streams all L rows of V
            # while producing `inner_tile` output elements.
            for l in range(space.l):
                row_base = operator.kv_row_address(h, l)
                for i in range(kv_lines_per_row):
                    compute = mac_cycles * (inner_stop - inner_start) if i == 0 else 0
                    entries.append(
                        TraceEntry(
                            compute_cycles=compute,
                            addr=row_base + i * line,
                            rw=AccessType.READ,
                            size=min(line, kv_row_bytes - i * line),
                            kind=RequestKind.KV,
                        )
                    )

        # -- output writes ------------------------------------------------------------
        out_bytes = (inner_stop - inner_start) * element_bytes
        out_base = operator.output_address(h, g, inner_start)
        out_lines = ceil_div(out_bytes, line)
        for i in range(out_lines):
            entries.append(
                TraceEntry(
                    compute_cycles=0,
                    addr=out_base + i * line,
                    rw=AccessType.WRITE,
                    size=min(line, out_bytes - i * line),
                    kind=RequestKind.OUTPUT,
                )
            )

        blocks.append(
            ThreadBlock(tb_id=tb_id, h=h, g=g, tile_index=tile, entries=entries)
        )
        tb_id += 1

    return Trace(blocks=blocks, name=name, line_size=line).validate()
