"""Memory-trace layer: mapping -> per-thread-block traces that drive the simulator."""

from repro.trace.generator import TraceGenerator, generate_trace
from repro.trace.stats import TraceStats, compute_trace_stats
from repro.trace.synthetic import (
    make_pointer_chase_trace,
    make_random_trace,
    make_shared_hotset_trace,
    make_stream_trace,
)
from repro.trace.threadblock import ThreadBlock, Trace

__all__ = [
    "ThreadBlock",
    "Trace",
    "TraceGenerator",
    "TraceStats",
    "compute_trace_stats",
    "generate_trace",
    "make_pointer_chase_trace",
    "make_random_trace",
    "make_shared_hotset_trace",
    "make_stream_trace",
]
