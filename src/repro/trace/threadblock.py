"""Thread blocks: the unit of work the runtime scheduler assigns to cores.

A :class:`ThreadBlock` is a short, ordered list of :class:`TraceEntry` items
(compute bubbles and memory accesses) plus provenance metadata (which head
group / query head / sequence tile it computes).  A :class:`Trace` is the whole
operator: an ordered list of thread blocks forming the global dispatch queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import TraceError
from repro.common.types import AccessType, TraceEntry


@dataclass(slots=True)
class ThreadBlock:
    """One thread block of the decode operator."""

    tb_id: int
    h: int
    g: int
    tile_index: int
    entries: list[TraceEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.tb_id < 0:
            raise TraceError(f"tb_id must be non-negative, got {self.tb_id}")

    # -- content helpers -------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        return len(self.entries)

    @property
    def num_accesses(self) -> int:
        return sum(1 for e in self.entries if e.has_access)

    @property
    def num_reads(self) -> int:
        return sum(1 for e in self.entries if e.has_access and e.rw == AccessType.READ)

    @property
    def num_writes(self) -> int:
        return sum(1 for e in self.entries if e.has_access and e.rw == AccessType.WRITE)

    @property
    def compute_cycles(self) -> int:
        return sum(e.compute_cycles for e in self.entries)

    def touched_lines(self, line_size: int) -> set[int]:
        """Set of cache-line addresses this block touches."""

        return {
            e.addr - (e.addr % line_size) for e in self.entries if e.has_access
        }

    def validate(self) -> "ThreadBlock":
        if not self.entries:
            raise TraceError(f"thread block {self.tb_id} has no entries")
        for e in self.entries:
            if e.compute_cycles < 0:
                raise TraceError(f"thread block {self.tb_id}: negative compute cycles")
            if e.has_access and e.size <= 0:
                raise TraceError(f"thread block {self.tb_id}: non-positive access size")
        return self


@dataclass(slots=True)
class Trace:
    """The full operator trace: thread blocks in global dispatch order."""

    blocks: list[ThreadBlock] = field(default_factory=list)
    name: str = "trace"
    line_size: int = 64

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)

    def __getitem__(self, index: int) -> ThreadBlock:
        return self.blocks[index]

    @property
    def total_accesses(self) -> int:
        return sum(block.num_accesses for block in self.blocks)

    @property
    def total_reads(self) -> int:
        return sum(block.num_reads for block in self.blocks)

    @property
    def total_writes(self) -> int:
        return sum(block.num_writes for block in self.blocks)

    def footprint_lines(self) -> int:
        """Number of distinct cache lines touched by the whole trace."""

        lines: set[int] = set()
        for block in self.blocks:
            lines |= block.touched_lines(self.line_size)
        return len(lines)

    def footprint_bytes(self) -> int:
        return self.footprint_lines() * self.line_size

    def validate(self) -> "Trace":
        if not self.blocks:
            raise TraceError("trace contains no thread blocks")
        seen_ids = set()
        for block in self.blocks:
            block.validate()
            if block.tb_id in seen_ids:
                raise TraceError(f"duplicate thread block id {block.tb_id}")
            seen_ids.add(block.tb_id)
        return self
