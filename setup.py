"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in minimal/offline environments where the
``wheel`` package (needed for PEP 660 editable builds) is unavailable, via
``pip install -e . --no-build-isolation``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "LLaMCAT reproduction: LLC cache arbitration and throttling for LLM decode, "
        "with a hybrid dataflow/trace/cycle-level simulation framework"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["llamcat=repro.cli:main"]},
)
