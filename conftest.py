"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. fully offline environments where ``pip install -e .`` is unavailable).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: full-simulation tests (figure/table harnesses)")
